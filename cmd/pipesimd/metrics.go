package main

import (
	"strconv"
	"strings"
	"sync"

	"pipesim"
	"pipesim/internal/eventbus"
	"pipesim/internal/metrics"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
	"pipesim/internal/sweep"
	"pipesim/internal/tracing"
	"pipesim/internal/version"
)

// daemonMetrics bundles every metric family the daemon exports on
// /metrics. Names follow the Prometheus conventions: a pipesimd_ prefix,
// _total on counters, base units (seconds, cycles) in the name.
type daemonMetrics struct {
	reg *metrics.Registry

	// HTTP serving surface.
	requests  *metrics.CounterVec   // pipesimd_http_requests_total{route,code}
	latency   *metrics.HistogramVec // pipesimd_http_request_seconds{route}
	inFlight  *metrics.Gauge        // pipesimd_http_in_flight
	buildInfo *metrics.GaugeVec     // pipesimd_build_info{module,version,vcs_revision,go_version}

	// Simulation runs (fed by the pipesim.RunHook, so every Run in the
	// process is counted no matter which handler triggered it).
	runs      *metrics.CounterVec   // pipesimd_runs_total{strategy,outcome}
	runCycles *metrics.HistogramVec // pipesimd_run_cycles{strategy}
	runTime   *metrics.HistogramVec // pipesimd_run_seconds{strategy}

	// Error taxonomy (PR-1): validation, watchdog and machine-check
	// failures, plus the runner's timeout/panic isolation.
	errors *metrics.CounterVec // pipesimd_errors_total{kind}

	// Probe-derived attribution totals: every simulated cycle the daemon
	// executed, classified by the exact per-cycle attribution buckets.
	attribution *metrics.CounterVec // pipesimd_attribution_cycles_total{bucket}

	// Cache-introspection totals (runs and sweep points that enabled
	// Config.CacheStats): miss counts by 3C class, plus the per-set
	// miss/dead-eviction heatmap of the most recent introspected run.
	cacheMiss    *metrics.CounterVec // pipesimd_cache_miss_total{class}
	cacheSetMiss *metrics.GaugeVec   // pipesimd_cache_set_misses{set}
	cacheSetDead *metrics.GaugeVec   // pipesimd_cache_set_dead_evictions{set}

	// Sweep experiments through /v1/sweep.
	sweepExperiments *metrics.CounterVec // pipesimd_sweep_experiments_total{outcome}

	// Durable sweep jobs (POST /v1/jobs). jobsQueued is synced from the
	// manager at scrape time.
	jobsSubmitted *metrics.CounterVec // pipesimd_jobs_submitted_total{outcome}
	jobsFinished  *metrics.CounterVec // pipesimd_jobs_finished_total{state}
	jobsActive    *metrics.Gauge      // pipesimd_jobs_active
	jobsQueued    *metrics.Gauge      // pipesimd_jobs_queue_depth
	jobPoints     *metrics.CounterVec // pipesimd_job_points_total{outcome}

	// Request-stage latency, fed from span completions (tracing.OnSpanEnd):
	// one observation per finished span, labelled by stage name.
	stageTime *metrics.HistogramVec // pipesimd_stage_seconds{stage}

	// Content-addressed run cache (internal/runcache). The cache keeps its
	// own monotonic counters; syncRunCache folds their growth into these
	// families at scrape time.
	runcacheHits      *metrics.Counter // pipesimd_runcache_hits_total
	runcacheMisses    *metrics.Counter // pipesimd_runcache_misses_total
	runcacheEvictions *metrics.Counter // pipesimd_runcache_evictions_total
	runcacheSize      *metrics.Gauge   // pipesimd_runcache_entries

	// Telemetry event bus (GET /v1/events). The bus keeps its own atomic
	// counters; syncEventBus folds their growth in at scrape time, like
	// the run cache.
	eventsPublished   *metrics.Counter // pipesimd_eventbus_published_total
	eventsDropped     *metrics.Counter // pipesimd_eventbus_dropped_total
	eventsSubscribers *metrics.Gauge   // pipesimd_eventbus_subscribers

	// Persistent run store (-store-dir), the run cache's disk tier.
	// Scrape-time delta fold like the run cache.
	runstoreHits      *metrics.Counter // pipesimd_runstore_hits_total
	runstoreMisses    *metrics.Counter // pipesimd_runstore_misses_total
	runstoreWrites    *metrics.Counter // pipesimd_runstore_writes_total
	runstoreEvictions *metrics.Counter // pipesimd_runstore_evictions_total
	runstoreEntries   *metrics.Gauge   // pipesimd_runstore_entries
	runstoreBytes     *metrics.Gauge   // pipesimd_runstore_bytes

	rcMu   sync.Mutex
	rcLast runcache.Counters // counter values already folded in

	rsMu   sync.Mutex
	rsLast runstore.Counters // store counter values already folded in

	ebMu                           sync.Mutex
	ebLastPublished, ebLastDropped uint64 // bus counters already folded in
}

// Error-kind label values for pipesimd_errors_total.
const (
	errKindBadRequest    = "bad_request"
	errKindInvalidConfig = "invalid_config"
	errKindDeadlock      = "deadlock"
	errKindMachineCheck  = "machine_check"
	errKindDeadline      = "deadline" // /v1/run exceeded -run-timeout
	errKindTimeout       = "timeout"  // sweep experiment exceeded its deadline
	errKindPanic         = "panic"
	errKindNotFound      = "not_found"
	errKindInternal      = "internal"
	errKindUnavailable   = "unavailable" // draining, or a disabled subsystem
	errKindQueueFull     = "queue_full"  // job admission queue at capacity
	errKindConflict      = "conflict"    // e.g. cancelling a finished job
)

// newDaemonMetrics registers every family on a fresh registry.
func newDaemonMetrics() *daemonMetrics {
	reg := metrics.NewRegistry()
	m := &daemonMetrics{
		reg: reg,
		requests: reg.CounterVec("pipesimd_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.HistogramVec("pipesimd_http_request_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		inFlight: reg.Gauge("pipesimd_http_in_flight",
			"HTTP requests currently being served."),
		buildInfo: reg.GaugeVec("pipesimd_build_info",
			"Build metadata of the running daemon; the value is always 1.",
			"module", "version", "vcs_revision", "go_version"),
		runs: reg.CounterVec("pipesimd_runs_total",
			"Simulation runs, by fetch strategy and outcome.", "strategy", "outcome"),
		runCycles: reg.HistogramVec("pipesimd_run_cycles",
			"Simulated cycle count per completed run, by fetch strategy.",
			metrics.ExponentialBuckets(1e3, 4, 12), "strategy"),
		runTime: reg.HistogramVec("pipesimd_run_seconds",
			"Wall-clock seconds per run, by fetch strategy.", nil, "strategy"),
		errors: reg.CounterVec("pipesimd_errors_total",
			"Failures by kind: bad_request, invalid_config, deadlock (watchdog), "+
				"machine_check, deadline (-run-timeout), timeout (sweep experiment), "+
				"panic, not_found, internal.", "kind"),
		attribution: reg.CounterVec("pipesimd_attribution_cycles_total",
			"Simulated cycles executed by this daemon, classified by the exact "+
				"per-cycle attribution bucket.", "bucket"),
		cacheMiss: reg.CounterVec("pipesimd_cache_miss_total",
			"Instruction-cache misses of introspected runs (Config.CacheStats), "+
				"by 3C class: compulsory, capacity, conflict.", "class"),
		cacheSetMiss: reg.GaugeVec("pipesimd_cache_set_misses",
			"Per-set miss counts of the most recent introspected run.", "set"),
		cacheSetDead: reg.GaugeVec("pipesimd_cache_set_dead_evictions",
			"Per-set dead-on-eviction counts of the most recent introspected run.", "set"),
		sweepExperiments: reg.CounterVec("pipesimd_sweep_experiments_total",
			"Sweep experiments executed through /v1/sweep, by outcome.", "outcome"),
		jobsSubmitted: reg.CounterVec("pipesimd_jobs_submitted_total",
			"Job submissions, by outcome: accepted, rejected_full (admission "+
				"queue at capacity), rejected_draining, rejected_invalid.", "outcome"),
		jobsFinished: reg.CounterVec("pipesimd_jobs_finished_total",
			"Jobs that reached a terminal state, by state: done, failed, cancelled.",
			"state"),
		jobsActive: reg.Gauge("pipesimd_jobs_active",
			"Jobs currently executing points."),
		jobsQueued: reg.Gauge("pipesimd_jobs_queue_depth",
			"Jobs admitted but not yet finished (queued plus running)."),
		jobPoints: reg.CounterVec("pipesimd_job_points_total",
			"Job experiment points, by outcome: ok, resumed (replayed from "+
				"checkpoint), retry, failed.", "outcome"),
		stageTime: reg.HistogramVec("pipesimd_stage_seconds",
			"Wall-clock seconds per traced request stage (decode, build, run, "+
				"runcache.lookup, simulate, experiment, root spans).", nil, "stage"),
		runcacheHits: reg.Counter("pipesimd_runcache_hits_total",
			"Run-cache lookups answered from a memoized simulation result."),
		runcacheMisses: reg.Counter("pipesimd_runcache_misses_total",
			"Run-cache lookups that required a fresh simulation."),
		runcacheEvictions: reg.Counter("pipesimd_runcache_evictions_total",
			"Run-cache entries evicted by the LRU bound."),
		runcacheSize: reg.Gauge("pipesimd_runcache_entries",
			"Simulation results currently memoized in the run cache."),
		runstoreHits: reg.Counter("pipesimd_runstore_hits_total",
			"Run-store lookups answered from the persistent archive (-store-dir)."),
		runstoreMisses: reg.Counter("pipesimd_runstore_misses_total",
			"Run-store lookups that found no archived record."),
		runstoreWrites: reg.Counter("pipesimd_runstore_writes_total",
			"Simulation results archived to the persistent run store."),
		runstoreEvictions: reg.Counter("pipesimd_runstore_evictions_total",
			"Archived records evicted by the store's count/byte bounds."),
		runstoreEntries: reg.Gauge("pipesimd_runstore_entries",
			"Records currently in the persistent run store."),
		runstoreBytes: reg.Gauge("pipesimd_runstore_bytes",
			"Bytes of records currently in the persistent run store."),
		eventsPublished: reg.Counter("pipesimd_eventbus_published_total",
			"Telemetry events published to the event bus."),
		eventsDropped: reg.Counter("pipesimd_eventbus_dropped_total",
			"Telemetry events dropped because a subscriber's ring was full "+
				"(slow SSE consumers lose the oldest events, never block publishers)."),
		eventsSubscribers: reg.Gauge("pipesimd_eventbus_subscribers",
			"Live event-bus subscriptions (open SSE streams)."),
	}
	v := version.Get()
	m.buildInfo.With(v.Module, v.Version, v.ShortRevision(), v.GoVersion).Set(1)
	return m
}

// observeRun is the pipesim.RunHook: one call per completed simulation
// run anywhere in the process.
func (m *daemonMetrics) observeRun(ri pipesim.RunInfo) {
	strategy := string(ri.Config.Strategy)
	outcome := "ok"
	if ri.Err != nil {
		outcome = errorKind(ri.Err)
	}
	m.runs.With(strategy, outcome).Inc()
	m.runTime.With(strategy).Observe(ri.Elapsed.Seconds())
	if ri.Result != nil {
		m.runCycles.With(strategy).Observe(float64(ri.Result.Cycles))
		m.addAttribution(ri.Result.Attribution)
		if cs := ri.Result.CacheStats; cs != nil {
			m.addCacheStats(cs)
		}
	}
}

// addCacheStats folds one introspected run's miss classes into the class
// counters and snapshots its per-set heatmap into the gauges (the gauges
// describe the most recent introspected run; sets beyond this run's count
// keep stale values, so dashboards should filter on the run's set range).
func (m *daemonMetrics) addCacheStats(cs *pipesim.CacheStats) {
	m.cacheMiss.With("compulsory").Add(float64(cs.Compulsory))
	m.cacheMiss.With("capacity").Add(float64(cs.Capacity))
	m.cacheMiss.With("conflict").Add(float64(cs.Conflict))
	for i, s := range cs.Sets {
		set := strconv.Itoa(i)
		m.cacheSetMiss.With(set).Set(float64(s.Misses))
		m.cacheSetDead.With(set).Set(float64(s.DeadEvictions))
	}
}

// addSweepCache folds a sweep outcome's aggregated miss classes in (sweep
// points bypass the run hook, like addSweepAttribution).
func (m *daemonMetrics) addSweepCache(t sweep.CacheTotals) {
	m.cacheMiss.With("compulsory").Add(float64(t.Compulsory))
	m.cacheMiss.With("capacity").Add(float64(t.Capacity))
	m.cacheMiss.With("conflict").Add(float64(t.Conflict))
}

// observeSpan is the tracing OnSpanEnd hook: one stage-latency observation
// per finished span. Per-experiment span names ("experiment:fig5a") fold
// into one "experiment" stage so the label set stays bounded. The span's
// trace ID rides along as the bucket's exemplar, so a slow histogram
// bucket links straight to a trace that landed in it (GET /v1/trace/{id}
// via the request ID logged with that trace).
func (m *daemonMetrics) observeSpan(sp *tracing.Span) {
	stage := sp.Name()
	if i := strings.IndexByte(stage, ':'); i >= 0 {
		stage = stage[:i]
	}
	m.stageTime.With(stage).ObserveExemplar(sp.Duration().Seconds(), sp.TraceID().String())
}

// addAttribution folds one run's exact attribution into the totals.
func (m *daemonMetrics) addAttribution(a pipesim.Attribution) {
	m.attribution.With("issue").Add(float64(a.Issue))
	m.attribution.With("fetch_starved").Add(float64(a.FetchStarved))
	m.attribution.With("ldq_wait").Add(float64(a.LDQWait))
	m.attribution.With("queue_full").Add(float64(a.QueueFull))
	m.attribution.With("drain").Add(float64(a.Drain))
	m.attribution.With("other").Add(float64(a.Other))
}

// syncRunCache folds the run cache's counter growth since the previous
// sync into the exported families and refreshes the size gauge. The cache
// counts monotonically; the registry's counters only support Add, so the
// exporter tracks the last folded snapshot and adds deltas. Called at
// scrape time — between scrapes the cache counts for itself.
func (m *daemonMetrics) syncRunCache() {
	cur := runcache.Default.Stats()
	m.rcMu.Lock()
	last := m.rcLast
	m.rcLast = cur
	m.rcMu.Unlock()
	m.runcacheHits.Add(float64(cur.Hits - last.Hits))
	m.runcacheMisses.Add(float64(cur.Misses - last.Misses))
	m.runcacheEvictions.Add(float64(cur.Evictions - last.Evictions))
	m.runcacheSize.Set(float64(cur.Size))
}

// syncRunStore folds the persistent run store's counter growth into the
// exported families and refreshes the size gauges, mirroring syncRunCache's
// scrape-time delta fold. No-op without -store-dir.
func (m *daemonMetrics) syncRunStore(store *runstore.Store) {
	if store == nil {
		return
	}
	cur := store.Counters()
	m.rsMu.Lock()
	last := m.rsLast
	m.rsLast = cur
	m.rsMu.Unlock()
	m.runstoreHits.Add(float64(cur.Hits - last.Hits))
	m.runstoreMisses.Add(float64(cur.Misses - last.Misses))
	m.runstoreWrites.Add(float64(cur.Writes - last.Writes))
	m.runstoreEvictions.Add(float64(cur.Evictions - last.Evictions))
	m.runstoreEntries.Set(float64(cur.Entries))
	m.runstoreBytes.Set(float64(cur.Bytes))
}

// syncEventBus folds the event bus's publish/drop counter growth into the
// exported families and refreshes the subscriber gauge, mirroring
// syncRunCache's scrape-time delta fold.
func (m *daemonMetrics) syncEventBus(b *eventbus.Bus) {
	pub, drop := b.Published(), b.Dropped()
	m.ebMu.Lock()
	dPub, dDrop := pub-m.ebLastPublished, drop-m.ebLastDropped
	m.ebLastPublished, m.ebLastDropped = pub, drop
	m.ebMu.Unlock()
	m.eventsPublished.Add(float64(dPub))
	m.eventsDropped.Add(float64(dDrop))
	m.eventsSubscribers.Set(float64(b.Subscribers()))
}

// addSweepAttribution folds a sweep outcome's aggregated buckets in (the
// sweep runner drives internal/core directly, bypassing the run hook).
func (m *daemonMetrics) addSweepAttribution(t sweep.BucketTotals) {
	m.attribution.With("issue").Add(float64(t.Issue))
	m.attribution.With("fetch_starved").Add(float64(t.FetchStarved))
	m.attribution.With("ldq_wait").Add(float64(t.LDQWait))
	m.attribution.With("queue_full").Add(float64(t.QueueFull))
	m.attribution.With("drain").Add(float64(t.Drain))
	m.attribution.With("other").Add(float64(t.Other))
}
