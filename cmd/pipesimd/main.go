// Command pipesimd serves the PIPE simulator over HTTP for long-running,
// many-experiment workloads.
//
// Endpoints:
//
//	POST /v1/run              run one simulation (JSON config overlay)
//	GET  /v1/runs             list archived runs, newest first (needs -store-dir)
//	GET  /v1/runs/{key}       one archived run record by content-addressed key
//	GET  /v1/compare?a=&b=    differential report between two archived runs
//	GET  /v1/sweep            run Table-II-style sweeps (fault-isolated runner)
//	POST /v1/jobs             submit a durable sweep job (202 + job id; needs -jobs-dir)
//	GET  /v1/jobs             list jobs by submit time (?state= filters)
//	GET  /v1/jobs/{id}        job status, progress and partial results
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET  /v1/jobs/{id}/events stream one job's events (SSE; Last-Event-ID resumes)
//	GET  /v1/events           stream the telemetry firehose (SSE; ?kind=, ?job=)
//	GET  /v1/experiments      list sweep experiment IDs
//	GET  /v1/trace/{id}       span trace of a recent request (?format=chrome for Perfetto)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness (always ok while the process serves)
//	GET  /readyz              readiness (503 until warmed, and again while draining)
//	GET  /version             build / VCS metadata
//	GET  /debug/pprof/        runtime profiling (net/http/pprof)
//	GET  /debug/flightrecorder  flight-recorder tails of recent failed runs
//
// Every request gets a span trace (joined to the caller's W3C traceparent
// when one is sent) retrievable by request ID; clients may supply their own
// X-Request-Id (64 bytes max, [A-Za-z0-9._-]). Failed simulations carry the
// flight recorder's recent-event tail in the error body.
//
// With -jobs-dir the daemon runs durable sweep jobs: every completed
// experiment point is checkpointed to a per-job JSONL file keyed by the
// runcache content hash, so a crashed or drained daemon resumes exactly
// the missing points on restart. Admission is bounded (-jobs-queue); a
// full queue sheds load with 429 + Retry-After.
//
// Everything the daemon does is narrated live on an in-process telemetry
// bus: job lifecycle, per-point outcomes, retries, backoff waits,
// checkpoint appends and sweep progress. GET /v1/events streams the
// firehose as Server-Sent Events; GET /v1/jobs/{id}/events streams one
// job with exactly-once point outcomes — the SSE event ID is the job's
// outcome-log index, persisted in the checkpoint, so Last-Event-ID
// resumes precisely even across a daemon crash. Slow consumers lose the
// oldest events rather than slowing the simulator
// (pipesimd_eventbus_dropped_total counts the loss).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: readiness drops
// immediately, new sweeps and job submissions get 503 + Retry-After,
// in-flight requests get -drain to finish, the running job checkpoints
// and stops, then the listener closes.
//
// Usage:
//
//	pipesimd                       # listen on :8974
//	pipesimd -addr 127.0.0.1:9000  # pick the listen address
//	pipesimd -log json             # JSON log records instead of text
//	pipesimd -drain 10s            # shutdown drain deadline
//	pipesimd -run-timeout 2m       # per-run / per-experiment deadline
//	pipesimd -runcache=false       # disable simulation-result memoization
//	pipesimd -store-dir /var/lib/pipesimd/runs  # persistent run archive:
//	                               # warm starts survive restarts, /v1/runs,
//	                               # /v1/compare and `pipesim diff` work off it
//	pipesimd -jobs-dir /var/lib/pipesimd/jobs  # enable durable sweep jobs
//	pipesimd -jobs-queue 16        # admitted-but-unfinished job bound (429 beyond)
//	pipesimd -jobs-points 4        # concurrent points per job (0 = one per CPU)
//	pipesimd -slow-ms 500          # log span breakdowns of requests over 500ms
//	pipesimd -events-buffer 1024   # per-SSE-stream event ring (drops beyond)
//	pipesimd -sse-heartbeat 30s    # SSE keepalive comment interval
//	pipesimd -version              # print build/VCS info and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pipesim/internal/runcache"
	"pipesim/internal/version"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8974", "listen address")
		logMode    = flag.String("log", "text", "log handler: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		runTimeout = flag.Duration("run-timeout", 5*time.Minute, "per-run and per-sweep-experiment deadline (0 = none)")
		maxBody    = flag.Int64("max-body", 1<<20, "maximum /v1/run request body in bytes")
		workers    = flag.Int("parallel", 0, "default sweep worker count (0 = one per CPU)")
		useCache   = flag.Bool("runcache", true, "memoize simulation results by (config, program) content hash")
		storeDir   = flag.String("store-dir", "", "persistent run-archive directory: results survive restarts and feed /v1/runs and /v1/compare (empty = disabled)")
		storeN     = flag.Int("store-entries", 0, "run-archive record bound; oldest evicted beyond it (0 = 16384)")
		storeBytes = flag.Int64("store-bytes", 0, "run-archive byte bound; oldest evicted beyond it (0 = 256 MiB)")
		jobsDir    = flag.String("jobs-dir", "", "directory for durable sweep-job manifests and checkpoints (empty = jobs API disabled)")
		jobsQueue  = flag.Int("jobs-queue", 0, "admitted-but-unfinished job bound; submissions beyond it get 429 (0 = default 16)")
		jobsPoints = flag.Int("jobs-points", 0, "concurrent experiment points per job (0 = one per CPU)")
		slowMS     = flag.Int64("slow-ms", 0, "log the span breakdown of requests slower than this many milliseconds (0 = off)")
		eventsBuf  = flag.Int("events-buffer", 0, "per-SSE-stream event ring capacity; a stalled stream drops the oldest beyond it (0 = 256)")
		sseHB      = flag.Duration("sse-heartbeat", 0, "SSE heartbeat-comment interval (0 = 15s)")
		showVer    = flag.Bool("version", false, "print module, version, VCS revision and dirty bit, then exit")
	)
	flag.Parse()
	runcache.Default.SetEnabled(*useCache)

	if *showVer {
		fmt.Println(version.Get())
		return 0
	}

	log, err := newLogger(os.Stderr, *logMode, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipesimd: %v\n", err)
		return 2
	}

	srv, err := newServer(log, serverOptions{
		maxBody:      *maxBody,
		runLimit:     *runTimeout,
		workers:      *workers,
		slowLimit:    time.Duration(*slowMS) * time.Millisecond,
		storeDir:     *storeDir,
		storeEntries: *storeN,
		storeBytes:   *storeBytes,
		eventsBuffer: *eventsBuf,
		sseHeartbeat: *sseHB,
		jobsDir:      *jobsDir,
		jobsQueue:    *jobsQueue,
		jobsPoints:   *jobsPoints,
	})
	if err != nil {
		log.Error("starting server", "err", err)
		return 1
	}

	v := version.Get()
	log.Info("pipesimd starting", "addr", *addr, "revision", v.ShortRevision(),
		"go", v.GoVersion, "drain", *drain, "run_timeout", *runTimeout)

	// Warm the shared benchmark image before accepting readiness probes:
	// the first /v1/run would otherwise eat the lazy build cost.
	if err := srv.warm(); err != nil {
		log.Error("warming benchmark image", "err", err)
		return 1
	}
	if srv.jobs != nil {
		resumed, err := srv.jobs.Recover()
		if err != nil {
			log.Error("recovering jobs", "dir", *jobsDir, "err", err)
			return 1
		}
		if resumed > 0 {
			log.Info("resuming interrupted jobs", "count", resumed, "dir", *jobsDir)
		}
	}
	log.Info("pipesimd ready")

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	select {
	case err := <-serveErr:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	stop() // a second signal kills the process immediately
	log.Info("shutting down", "drain", *drain)
	srv.drain()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil {
		log.Warn("drain deadline exceeded, closing", "err", err)
		hs.Close()
		if srv.jobs != nil {
			srv.jobs.Close(sdCtx)
		}
		return 1
	}
	if srv.jobs != nil {
		// Interrupt the running job (its completed points are already
		// checkpointed; the next start resumes the rest) and wait for the
		// executor to stop within the drain budget.
		if err := srv.jobs.Close(sdCtx); err != nil {
			log.Warn("job executor did not stop before the drain deadline", "err", err)
		}
	}
	log.Info("pipesimd stopped")
	return 0
}

// newLogger builds the text or JSON slog handler selected on the command
// line (shared flag convention with cmd/experiments).
func newLogger(w *os.File, mode, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want text or json)", mode)
	}
}
