package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipesim/internal/eventbus"
	"pipesim/internal/jobs"
)

// sseFrame is one decoded Server-Sent Events frame.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// sseStream is a test client over one event-stream response.
type sseStream struct {
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc
}

// openSSE connects to an SSE endpoint, optionally sending Last-Event-ID.
func openSSE(t *testing.T, url, lastEventID string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	s := &sseStream{resp: resp, br: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(s.close)
	return s
}

func (s *sseStream) close() {
	s.cancel()
	s.resp.Body.Close()
}

// next reads frames until a non-comment frame or EOF. Comments (heartbeats)
// are counted via gotComment when non-nil.
func (s *sseStream) next(gotComment *bool) (sseFrame, error) {
	var f sseFrame
	sawField := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if sawField {
				return f, nil
			}
			// blank after a comment-only block: keep reading
		case strings.HasPrefix(line, ":"):
			if gotComment != nil {
				*gotComment = true
			}
		case strings.HasPrefix(line, "id: "):
			f.ID, sawField = line[4:], true
		case strings.HasPrefix(line, "event: "):
			f.Event, sawField = line[7:], true
		case strings.HasPrefix(line, "data: "):
			f.Data, sawField = line[6:], true
		default:
			return f, fmt.Errorf("unparseable SSE line %q", line)
		}
	}
}

// collectUntil reads frames until pred returns true (that frame is
// included) or the deadline passes.
func (s *sseStream) collectUntil(t *testing.T, pred func(sseFrame) bool) []sseFrame {
	t.Helper()
	var out []sseFrame
	deadline := time.After(60 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			f, err := s.next(nil)
			if err != nil {
				return
			}
			out = append(out, f)
			if pred(f) {
				return
			}
		}
	}()
	select {
	case <-done:
		return out
	case <-deadline:
		s.close()
		<-done
		t.Fatalf("stream did not reach the wanted frame; got %+v", out)
		return nil
	}
}

// metricValue extracts one un-labelled metric's value from Prometheus text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestEventsKindFilterValidation: a ?kind= entry that matches no registered
// kind (neither exactly nor as a dotted prefix) is a 400 up front, not a
// stream that silently never delivers anything.
func TestEventsKindFilterValidation(t *testing.T) {
	_, ts := newTestServer(t)

	for _, bad := range []string{"bogus", "job.s", "jobs", "point.ok.extra", "job,typo"} {
		resp, err := http.Get(ts.URL + "/v1/events?kind=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("kind=%q: status %d, want 400", bad, resp.StatusCode)
			continue
		}
		var apiErr struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(body, &apiErr); err != nil {
			t.Fatalf("kind=%q: non-JSON error body %q", bad, body)
		}
		if apiErr.Kind != errKindBadRequest || !strings.Contains(apiErr.Error, "unknown event kind") {
			t.Errorf("kind=%q: error = %+v", bad, apiErr)
		}
		if !strings.Contains(apiErr.Error, jobs.KindJobStart) {
			t.Errorf("kind=%q: error does not list the registered kinds: %s", bad, apiErr.Error)
		}
	}

	// Exact kinds, dotted prefixes and comma-separated mixes all subscribe.
	for _, good := range []string{"job", "point", "job.start", "point.ok", "ckpt.append", "sweep.experiment", "job.end,point"} {
		s := openSSE(t, ts.URL+"/v1/events?kind="+good, "")
		s.close()
	}
}

// TestSSEHeartbeat: an idle firehose stream receives keepalive comments at
// the configured interval.
func TestSSEHeartbeat(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{runLimit: time.Minute, sseHeartbeat: 30 * time.Millisecond})
	s := openSSE(t, ts.URL+"/v1/events", "")
	got := false
	done := make(chan error, 1)
	go func() {
		// next only returns on a real frame or error; on this idle stream it
		// runs until the close below errors it out, counting heartbeats.
		_, err := s.next(&got)
		done <- err
	}()
	select {
	case <-time.After(2 * time.Second):
	case err := <-done:
		t.Fatalf("idle stream produced a frame or died early: %v", err)
	}
	s.close()
	<-done // join the reader before touching got
	if !got {
		t.Error("no heartbeat comment within 2s at a 30ms interval")
	}
}

// TestJobEventsReplayTerminal: streaming a finished job replays its whole
// outcome log with index IDs and closes with a terminal end frame;
// Last-Event-ID and ?after= cut the replay.
func TestJobEventsReplayTerminal(t *testing.T) {
	_, base := jobsTestServer(t, serverOptions{})
	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, base, v.ID)

	s := openSSE(t, base+"/v1/jobs/"+v.ID+"/events", "")
	frames := s.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
	if len(frames) != 4 {
		t.Fatalf("got %d frames %+v, want snapshot + 2 outcomes + end", len(frames), frames)
	}
	if frames[0].Event != "job.snapshot" || !strings.Contains(frames[0].Data, `"done"`) {
		t.Errorf("first frame: %+v, want a terminal job.snapshot", frames[0])
	}
	for i, f := range frames[1:3] {
		if f.Event != "point.ok" || f.ID != strconv.Itoa(i+1) {
			t.Errorf("outcome frame %d: %+v, want point.ok id %d", i, f, i+1)
		}
		var o jobs.PointOutcome
		if err := json.Unmarshal([]byte(f.Data), &o); err != nil {
			t.Fatal(err)
		}
		if o.Index != i+1 || o.Cycles == 0 {
			t.Errorf("outcome payload %d: %+v", i, o)
		}
	}
	if frames[3].Event != "end" || !strings.Contains(frames[3].Data, "job_terminal") {
		t.Errorf("final frame: %+v, want end/job_terminal", frames[3])
	}

	// Resume cursors cut the replay: only indexes past the cursor stream.
	s2 := openSSE(t, base+"/v1/jobs/"+v.ID+"/events?after=1", "")
	frames = s2.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
	if len(frames) != 3 || frames[1].ID != "2" {
		t.Errorf("?after=1 frames: %+v, want snapshot + outcome 2 + end", frames)
	}
	s3 := openSSE(t, base+"/v1/jobs/"+v.ID+"/events", "2")
	frames = s3.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
	if len(frames) != 2 {
		t.Errorf("Last-Event-ID: 2 frames: %+v, want snapshot + end only", frames)
	}

	// Error paths.
	if r, _ := get(t, base+"/v1/jobs/j-nope-1/events"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream: %d, want 404", r.StatusCode)
	}
	if r, _ := get(t, base+"/v1/jobs/"+v.ID+"/events?after=x"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad after: %d, want 400", r.StatusCode)
	}
}

// TestFirehoseObservesJobLifecycle: a firehose subscriber opened before a
// job is submitted sees the full narrated lifecycle, and kind filters
// restrict what is delivered.
func TestFirehoseObservesJobLifecycle(t *testing.T) {
	srv, base := jobsTestServer(t, serverOptions{})

	all := openSSE(t, base+"/v1/events", "")
	points := openSSE(t, base+"/v1/events?kind=point", "")
	// The handlers subscribe asynchronously; submit only once both streams
	// are attached so job.queued cannot be missed.
	for deadline := time.Now().Add(10 * time.Second); srv.bus.Subscribers() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriptions did not attach")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}

	frames := all.collectUntil(t, func(f sseFrame) bool { return f.Event == jobs.KindJobEnd })
	counts := map[string]int{}
	lastSeq := uint64(0)
	for _, f := range frames {
		counts[f.Event]++
		// Firehose IDs are the bus sequence: strictly increasing.
		seq, err := strconv.ParseUint(f.ID, 10, 64)
		if err != nil || seq <= lastSeq {
			t.Errorf("frame %+v: bus seq id not increasing past %d", f, lastSeq)
		}
		lastSeq = seq
	}
	for kind, want := range map[string]int{
		jobs.KindJobQueued:  1,
		jobs.KindJobStart:   1,
		jobs.KindJobEnd:     1,
		jobs.KindPointOK:    2,
		jobs.KindCkptAppend: 2,
		"sweep.experiment":  2,
	} {
		if counts[kind] != want {
			t.Errorf("firehose saw %d %s events, want %d (all: %v)", counts[kind], kind, want, counts)
		}
	}

	// The ?kind=point stream got exactly the point.* subset.
	okSeen := 0
	got := points.collectUntil(t, func(f sseFrame) bool {
		if f.Event == jobs.KindPointOK {
			okSeen++
		}
		return okSeen == 2
	})
	for _, f := range got {
		if !strings.HasPrefix(f.Event, "point.") {
			t.Errorf("kind-filtered stream leaked %+v", f)
		}
	}
}

// TestJobEventsResumeMidJob: a consumer disconnects mid-job and reconnects
// with Last-Event-ID; the union of both connections is every outcome
// exactly once.
func TestJobEventsResumeMidJob(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	reached := make(chan struct{})
	var once sync.Once
	_, base := jobsTestServer(t, serverOptions{
		jobsPoints: 1,
		jobsFault: func(jobID, pointID string, attempt int) error {
			if calls.Add(1) >= 2 {
				once.Do(func() { close(reached) })
				<-release
			}
			return nil
		},
	})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}

	// First connection: observe the first point land, then drop.
	s1 := openSSE(t, base+"/v1/jobs/"+v.ID+"/events", "")
	frames := s1.collectUntil(t, func(f sseFrame) bool { return f.Event == jobs.KindPointOK })
	lastID := frames[len(frames)-1].ID
	if lastID != "1" {
		t.Fatalf("first outcome id = %q, want 1", lastID)
	}
	s1.close()

	<-reached
	close(release)
	waitJobDone(t, base, v.ID)

	// Reconnect where we left off: outcome 2 arrives exactly once, 1 never
	// again.
	s2 := openSSE(t, base+"/v1/jobs/"+v.ID+"/events", lastID)
	frames = s2.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
	seen := map[string]int{}
	for _, f := range frames {
		if strings.HasPrefix(f.Event, "point.") {
			seen[f.ID]++
		}
	}
	if seen["1"] != 0 || seen["2"] != 1 || len(seen) != 1 {
		t.Errorf("resumed stream outcomes by id = %v, want exactly one delivery of id 2", seen)
	}
}

// TestEventStreamsEndOnDrain: draining the daemon closes every SSE stream
// with a terminal end frame instead of hanging them until the listener
// dies.
func TestEventStreamsEndOnDrain(t *testing.T) {
	srv, ts := newTestServerOpts(t, serverOptions{runLimit: time.Minute})
	s1 := openSSE(t, ts.URL+"/v1/events", "")
	s2 := openSSE(t, ts.URL+"/v1/events?kind=job", "")
	for deadline := time.Now().Add(10 * time.Second); srv.bus.Subscribers() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriptions did not attach")
		}
		time.Sleep(time.Millisecond)
	}

	srv.drain()
	for i, s := range []*sseStream{s1, s2} {
		frames := s.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
		last := frames[len(frames)-1]
		if last.Event != "end" || !strings.Contains(last.Data, "draining") {
			t.Errorf("stream %d final frame %+v, want end/draining", i, last)
		}
		// The handler returned: the body is cleanly at EOF.
		if _, err := s.next(nil); !errors.Is(err, io.EOF) {
			t.Errorf("stream %d after end frame: err = %v, want EOF", i, err)
		}
	}
}

// TestEventStreamGoroutineLeak: opening and abandoning many streams leaves
// no handler goroutines behind once the clients disconnect.
func TestEventStreamGoroutineLeak(t *testing.T) {
	srv, ts := newTestServerOpts(t, serverOptions{runLimit: time.Minute})
	before := runtime.NumGoroutine()

	const n = 20
	streams := make([]*sseStream, 0, n)
	for i := 0; i < n; i++ {
		streams = append(streams, openSSE(t, ts.URL+"/v1/events", ""))
	}
	for deadline := time.Now().Add(10 * time.Second); srv.bus.Subscribers() < n; {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriptions did not attach")
		}
		time.Sleep(time.Millisecond)
	}
	for _, s := range streams {
		s.close()
	}

	// Handlers notice the disconnect, unsubscribe and return. Parked
	// transport connections are evicted so client-side goroutines don't
	// mask a server-side leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if srv.bus.Subscribers() == 0 && runtime.NumGoroutine() <= before+4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after closing %d streams: %d subscribers, %d goroutines (baseline %d)",
				n, srv.bus.Subscribers(), runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStalledSubscriberDropsVisible: a subscriber that never drains its
// ring loses the oldest events, and the loss is visible on /metrics.
func TestStalledSubscriberDropsVisible(t *testing.T) {
	srv, base := jobsTestServer(t, serverOptions{})

	// A deliberately stalled direct subscription with a tiny ring: the
	// job's ~10 events overflow it.
	stalled := srv.bus.Subscribe(eventbus.SubOptions{Buffer: 2})
	defer stalled.Close()

	resp, body := postJSON(t, base+"/v1/jobs", smallJobSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, base, v.ID)

	_, metrics := get(t, base+"/metrics")
	if d := metricValue(t, metrics, "pipesimd_eventbus_dropped_total"); d == 0 {
		t.Error("stalled subscriber produced no drops in pipesimd_eventbus_dropped_total")
	}
	if p := metricValue(t, metrics, "pipesimd_eventbus_published_total"); p < 8 {
		t.Errorf("pipesimd_eventbus_published_total = %v, want the job's full lifecycle", p)
	}
	if subs := metricValue(t, metrics, "pipesimd_eventbus_subscribers"); subs < 1 {
		t.Errorf("pipesimd_eventbus_subscribers = %v, want >= 1", subs)
	}
	if stalled.Dropped() == 0 {
		t.Error("subscriber-level drop counter is zero")
	}
}

// TestJobEventsSoakKillResume is the daemon-level chaos soak for the
// streaming layer: an SSE consumer follows a job whose daemon is killed
// mid-sweep; a fresh daemon over the same state directory recovers the
// job, and the consumer — reconnecting with Last-Event-ID — observes
// every point outcome exactly once across the crash.
func TestJobEventsSoakKillResume(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	var once sync.Once
	reached := make(chan struct{})
	release := make(chan struct{})

	srvA, baseA := jobsTestServer(t, serverOptions{
		jobsDir:    dir,
		jobsPoints: 1,
		jobsFault: func(jobID, pointID string, attempt int) error {
			if calls.Add(1) <= 2 {
				return nil
			}
			once.Do(func() { close(reached) })
			<-release
			return errors.New("injected worker kill")
		},
	})

	spec := `{"grid":{"variants":["conv"],"cache_sizes":[128,256,512,1024]}}`
	resp, body := postJSON(t, baseA+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}

	// Follow the job until the daemon starts dying. The stream ends with a
	// clean "draining" frame; everything the consumer saw is cursored.
	s1 := openSSE(t, baseA+"/v1/jobs/"+v.ID+"/events", "")
	<-reached // two points are durably checkpointed, the third is held

	seen := map[string]string{} // outcome id -> point
	lastID := 0
	var drainFrames []sseFrame
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for {
			f, err := s1.next(nil)
			if err != nil {
				return
			}
			drainFrames = append(drainFrames, f)
			if strings.HasPrefix(f.Event, "point.") && f.ID != "" {
				var o jobs.PointOutcome
				if err := json.Unmarshal([]byte(f.Data), &o); err != nil {
					continue
				}
				seen[f.ID] = o.Point
				if o.Index > lastID {
					lastID = o.Index
				}
			}
			if f.Event == "end" {
				return
			}
		}
	}()

	// Kill daemon A: drain (ends the SSE stream), stop the job executor
	// mid-point, close the listener. The release only opens once the
	// drain has begun, so the interrupted round parks its pending points.
	srvA.drain()
	<-streamDone
	last := drainFrames[len(drainFrames)-1]
	if last.Event != "end" || !strings.Contains(last.Data, "draining") {
		t.Fatalf("stream over the dying daemon ended with %+v, want end/draining", last)
	}
	if len(seen) != 2 || lastID == 0 {
		t.Fatalf("before the kill the consumer saw outcomes %v (lastID %d), want the 2 checkpointed points", seen, lastID)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	closeErr := make(chan error, 1)
	go func() { closeErr <- srvA.jobs.Close(closeCtx) }()
	time.Sleep(100 * time.Millisecond) // let Close cancel the executor context
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatalf("draining daemon A's jobs: %v", err)
	}

	// Daemon B over the same state directory recovers the job.
	srvB, baseB := jobsTestServer(t, serverOptions{jobsDir: dir})
	resumed, err := srvB.jobs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("Recover resumed %d jobs, want 1", resumed)
	}

	// Reconnect exactly where the consumer left off.
	s2 := openSSE(t, baseB+"/v1/jobs/"+v.ID+"/events", strconv.Itoa(lastID))
	frames := s2.collectUntil(t, func(f sseFrame) bool { return f.Event == "end" })
	for _, f := range frames {
		if !strings.HasPrefix(f.Event, "point.") || f.ID == "" {
			continue
		}
		var o jobs.PointOutcome
		if err := json.Unmarshal([]byte(f.Data), &o); err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[f.ID]; dup {
			t.Errorf("outcome id %s delivered twice (%s, then %s)", f.ID, prev, o.Point)
			continue
		}
		seen[f.ID] = o.Point
	}
	if frames[len(frames)-1].Event != "end" {
		t.Fatalf("resumed stream did not end cleanly: %+v", frames)
	}

	// Exactly once, across the crash: four outcomes, four distinct points,
	// dense ids.
	if len(seen) != 4 {
		t.Fatalf("consumer saw %d outcomes %v, want 4", len(seen), seen)
	}
	pointsSeen := map[string]bool{}
	for id, p := range seen {
		n, err := strconv.Atoi(id)
		if err != nil || n < 1 || n > 4 {
			t.Errorf("outcome id %q out of the dense 1..4 range", id)
		}
		if pointsSeen[p] {
			t.Errorf("point %s observed under two ids", p)
		}
		pointsSeen[p] = true
	}
	fin := waitJobDone(t, baseB, v.ID)
	if fin.State != jobs.StateDone {
		t.Fatalf("recovered job finished %s (error %q), want done", fin.State, fin.Error)
	}
}
