package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"pipesim/internal/jobs"
	"pipesim/internal/tracing"
)

// Retry-After values (seconds) for shed load: a full queue clears as the
// executor grinds through jobs; a draining daemon is about to hand its
// traffic to another replica, so clients should come back sooner.
const (
	retryAfterQueueFull = 15
	retryAfterDraining  = 10
)

// jobTracing retains one trace per executing job so GET /v1/trace/job-{id}
// works for background work exactly as it does for requests. The span map
// carries each live job's root span from the JobStart hook to JobEnd.
type jobTracing struct {
	tracer *tracing.Tracer
	mu     sync.Mutex
	spans  map[string]*tracing.Span
}

func (jt *jobTracing) start(v *jobs.View) {
	_, span := jt.tracer.StartTrace(context.Background(), "job:"+v.ID, "job-"+v.ID, tracing.TraceContext{})
	jt.mu.Lock()
	jt.spans[v.ID] = span
	jt.mu.Unlock()
}

func (jt *jobTracing) end(v *jobs.View) {
	jt.mu.Lock()
	span := jt.spans[v.ID]
	delete(jt.spans, v.ID)
	jt.mu.Unlock()
	if span == nil {
		return
	}
	span.SetAttr("state", string(v.State))
	span.SetAttr("points", strconv.Itoa(v.CompletedPoints))
	span.SetAttr("retries", strconv.Itoa(v.RetriesUsed))
	span.End()
}

// newJobManager builds the daemon's job manager with its lifecycle hooks
// wired into the metrics registry and the tracer.
func (s *server) newJobManager(opts serverOptions) (*jobs.Manager, error) {
	jt := &jobTracing{tracer: s.tracer, spans: make(map[string]*tracing.Span)}
	return jobs.New(jobs.Options{
		Dir:          opts.jobsDir,
		QueueLimit:   opts.jobsQueue,
		PointWorkers: opts.jobsPoints,
		PointTimeout: opts.runLimit,
		Logger:       s.log,
		Events:       s.bus,
		InjectFault:  opts.jobsFault,
		Hooks: jobs.Hooks{
			JobStart: func(v *jobs.View) {
				s.metrics.jobsActive.Inc()
				jt.start(v)
			},
			JobEnd: func(v *jobs.View) {
				// A job can end without ever starting (cancelled while
				// queued, failed during recovery); only a started job
				// incremented the gauge.
				if v.Started {
					s.metrics.jobsActive.Dec()
				}
				s.metrics.jobsFinished.With(string(v.State)).Inc()
				jt.end(v)
			},
			Point: func(jobID, outcome string) {
				s.metrics.jobPoints.With(outcome).Inc()
			},
		},
	})
}

// requireJobs returns the manager, failing the request when the jobs
// subsystem is disabled (-jobs-dir not set).
func (s *server) requireJobs(w http.ResponseWriter, r *http.Request) *jobs.Manager {
	if s.jobs == nil {
		s.fail(w, r, errKindUnavailable,
			errors.New("durable jobs are disabled: start pipesimd with -jobs-dir"))
		return nil
	}
	return s.jobs
}

// handleJobSubmit admits one durable sweep job. Overload is shed before
// any work happens: 503 + Retry-After while draining (the work would be
// killed), 429 + Retry-After when the admission queue is full.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	m := s.requireJobs(w, r)
	if m == nil {
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		s.metrics.jobsSubmitted.With("rejected_draining").Inc()
		s.fail(w, r, errKindUnavailable, errors.New("draining: not accepting jobs"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec jobs.Spec
	if err := dec.Decode(&spec); err != nil {
		s.metrics.jobsSubmitted.With("rejected_invalid").Inc()
		s.fail(w, r, errKindBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	v, err := m.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterQueueFull))
		s.metrics.jobsSubmitted.With("rejected_full").Inc()
		s.fail(w, r, errKindQueueFull, err)
		return
	case errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		s.metrics.jobsSubmitted.With("rejected_draining").Inc()
		s.fail(w, r, errKindUnavailable, err)
		return
	case err != nil:
		s.metrics.jobsSubmitted.With("rejected_invalid").Inc()
		s.fail(w, r, errKindBadRequest, err)
		return
	}
	s.metrics.jobsSubmitted.With("accepted").Inc()
	reqLog(r).Info("job accepted", "job", v.ID, "points", v.TotalPoints)
	writeJSON(w, http.StatusAccepted, v)
}

// handleJobGet serves one job's status, progress and partial results.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	m := s.requireJobs(w, r)
	if m == nil {
		return
	}
	v, err := m.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, errKindNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleJobList serves summaries of every known job, ordered by submit
// time (oldest first; ID breaks ties for same-instant submissions).
// ?state= filters: an exact job state, or the meta-values "active"
// (queued, running, recovering) and "terminal" (done, failed, cancelled).
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	m := s.requireJobs(w, r)
	if m == nil {
		return
	}
	views := m.List()
	sort.Slice(views, func(i, j int) bool {
		if !views[i].Created.Equal(views[j].Created) {
			return views[i].Created.Before(views[j].Created)
		}
		return views[i].ID < views[j].ID
	})
	if raw := r.URL.Query().Get("state"); raw != "" {
		keep, err := stateFilter(raw)
		if err != nil {
			s.fail(w, r, errKindBadRequest, err)
			return
		}
		filtered := views[:0]
		for _, v := range views {
			if keep(v) {
				filtered = append(filtered, v)
			}
		}
		views = filtered
	}
	type listResponse struct {
		Jobs []*jobs.View `json:"jobs"`
	}
	if views == nil {
		views = []*jobs.View{} // render "jobs": [], not null
	}
	writeJSON(w, http.StatusOK, listResponse{Jobs: views})
}

// stateFilter resolves a ?state= value to its predicate.
func stateFilter(raw string) (func(*jobs.View) bool, error) {
	switch raw {
	case "active":
		return func(v *jobs.View) bool { return !v.State.Terminal() }, nil
	case "terminal":
		return func(v *jobs.View) bool { return v.State.Terminal() }, nil
	case string(jobs.StateQueued), string(jobs.StateRunning), string(jobs.StateRecovering),
		string(jobs.StateDone), string(jobs.StateFailed), string(jobs.StateCancelled):
		want := jobs.State(raw)
		return func(v *jobs.View) bool { return v.State == want }, nil
	}
	return nil, fmt.Errorf("bad state %q (want a job state, active or terminal)", raw)
}

// handleJobCancel cancels a queued or running job. Cancelling a finished
// job is a conflict, not an error in the job itself.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	m := s.requireJobs(w, r)
	if m == nil {
		return
	}
	v, err := m.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.fail(w, r, errKindNotFound, err)
		return
	case errors.Is(err, jobs.ErrTerminal):
		s.fail(w, r, errKindConflict, fmt.Errorf("job %s already %s", v.ID, v.State))
		return
	}
	reqLog(r).Info("job cancel requested", "job", v.ID, "state", v.State)
	writeJSON(w, http.StatusOK, v)
}
