package main

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"pipesim/internal/compare"
	"pipesim/internal/runstore"
)

func storeServer(t *testing.T, dir string) (*server, string) {
	t.Helper()
	s, ts := newTestServerOpts(t, serverOptions{runLimit: time.Minute, storeDir: dir})
	return s, ts.URL
}

func postRun(t *testing.T, url, body string) runResponse {
	t.Helper()
	resp, raw := post(t, url+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d: %s", resp.StatusCode, raw)
	}
	var rr runResponse
	if err := json.Unmarshal([]byte(raw), &rr); err != nil {
		t.Fatalf("run response: %v", err)
	}
	return rr
}

// TestRunArchiveEndpoints drives the full archive surface over HTTP: runs
// are archived with their keys, listed, retrievable, and comparable — and
// the compare report's bucket deltas sum exactly to the cycle delta.
func TestRunArchiveEndpoints(t *testing.T) {
	_, url := storeServer(t, t.TempDir())

	a := postRun(t, url, `{"asm": `+quote(smallLoop)+`, "config": {"CacheStats": true, "CacheBytes": 64}}`)
	b := postRun(t, url, `{"asm": `+quote(smallLoop)+`, "config": {"CacheStats": true, "CacheBytes": 64, "Strategy": "conventional"}}`)
	if a.Source != "simulated" || b.Source != "simulated" {
		t.Fatalf("sources = %q/%q, want simulated", a.Source, b.Source)
	}
	if len(a.Key) != 64 || a.Key != a.Result.Key {
		t.Fatalf("run key = %q (result key %q)", a.Key, a.Result.Key)
	}

	// The archive lists both runs.
	resp, raw := get(t, url+"/v1/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runs list = %d: %s", resp.StatusCode, raw)
	}
	var list runsListResponse
	if err := json.Unmarshal([]byte(raw), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Entries) != 2 {
		t.Fatalf("archive lists %d runs, want 2: %s", list.Count, raw)
	}

	// A single record round-trips with its statistics.
	resp, raw = get(t, url+"/v1/runs/"+a.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run get = %d: %s", resp.StatusCode, raw)
	}
	var rec runstore.Record
	if err := json.Unmarshal([]byte(raw), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Key != a.Key || rec.Sim.Cycles != a.Result.Cycles {
		t.Errorf("record = key %s cycles %d, want %s/%d", rec.Key, rec.Sim.Cycles, a.Key, a.Result.Cycles)
	}

	// The compare report explains the delta exactly.
	resp, raw = get(t, url+"/v1/compare?a="+a.Key+"&b="+b.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare = %d: %s", resp.StatusCode, raw)
	}
	var rep compare.Report
	if err := json.Unmarshal([]byte(raw), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != compare.Schema {
		t.Errorf("schema = %q", rep.Schema)
	}
	wantDelta := int64(b.Result.Cycles) - int64(a.Result.Cycles)
	if rep.CycleDelta != wantDelta {
		t.Errorf("cycle delta = %d, want %d", rep.CycleDelta, wantDelta)
	}
	if got := rep.AttributionDeltaSum(); got != rep.CycleDelta {
		t.Errorf("attribution delta sum = %d, want cycle delta %d", got, rep.CycleDelta)
	}
	if len(rep.MissClasses) != 3 {
		t.Errorf("miss classes = %d, want 3", len(rep.MissClasses))
	}
}

// TestRunArchiveErrors pins the error taxonomy of the archive endpoints.
func TestRunArchiveErrors(t *testing.T) {
	_, url := storeServer(t, t.TempDir())

	resp, body := get(t, url+"/v1/runs/zzzz")
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || ae.Kind != errKindBadRequest {
		t.Errorf("bad key = %d/%s", resp.StatusCode, ae.Kind)
	}
	missing := "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	resp, body = get(t, url+"/v1/runs/"+missing)
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusNotFound || ae.Kind != errKindNotFound {
		t.Errorf("missing key = %d/%s", resp.StatusCode, ae.Kind)
	}
	resp, body = get(t, url+"/v1/compare")
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusBadRequest || ae.Kind != errKindBadRequest {
		t.Errorf("compare without keys = %d/%s", resp.StatusCode, ae.Kind)
	}
	resp, body = get(t, url+"/v1/compare?a="+missing+"&b="+missing)
	if ae := decodeErr(t, body); resp.StatusCode != http.StatusNotFound || ae.Kind != errKindNotFound {
		t.Errorf("compare unarchived = %d/%s", resp.StatusCode, ae.Kind)
	}
}

// TestRunArchiveDisabled: without -store-dir the archive endpoints answer
// 503 unavailable.
func TestRunArchiveDisabled(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/runs", "/v1/runs/00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff", "/v1/compare?a=x&b=y"} {
		resp, body := get(t, ts.URL+path)
		if ae := decodeErr(t, body); resp.StatusCode != http.StatusServiceUnavailable || ae.Kind != errKindUnavailable {
			t.Errorf("%s = %d/%s, want 503/unavailable", path, resp.StatusCode, ae.Kind)
		}
	}
}

// TestStoreServesAcrossRestart is the PR's acceptance criterion: a daemon
// restarted with the same -store-dir serves a previously-run config from
// disk without re-simulating.
func TestStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"asm": ` + quote(smallLoop) + `, "config": {"CacheBytes": 128, "LineBytes": 8}}`

	s1, url1 := storeServer(t, dir)
	first := postRun(t, url1, body)
	if first.Source != "simulated" {
		t.Fatalf("first run source = %q", first.Source)
	}
	if n := s1.store.Counters().Writes; n != 1 {
		t.Fatalf("store writes = %d, want 1", n)
	}
	s1.drain() // the "old" daemon shuts down, detaching its store

	// New daemon, cold memory cache, same directory.
	s2, url2 := storeServer(t, dir)
	if s2.store.Len() != 1 {
		t.Fatalf("restarted store has %d records, want 1", s2.store.Len())
	}
	second := postRun(t, url2, body)
	if second.Source != "store" {
		t.Fatalf("post-restart source = %q, want store", second.Source)
	}
	if second.Key != first.Key || second.Result.Cycles != first.Result.Cycles {
		t.Errorf("served run differs: %s/%d vs %s/%d",
			second.Key, second.Result.Cycles, first.Key, first.Result.Cycles)
	}
	if hits := s2.store.Counters().Hits; hits != 1 {
		t.Errorf("store hits = %d, want 1", hits)
	}

	// Promoted: a third request is a memory hit and touches no disk.
	third := postRun(t, url2, body)
	if third.Source != "memory" {
		t.Errorf("third run source = %q, want memory", third.Source)
	}
}

// TestPerLoopRunsArchived: per-loop runs bypass the cache but are archived
// explicitly, with the per-loop table riding along for /v1/compare.
func TestPerLoopRunsArchived(t *testing.T) {
	s, url := storeServer(t, t.TempDir())
	rr := postRun(t, url, `{"per_loop": true, "config": {"CacheBytes": 256}}`)
	if rr.Source != "simulated" {
		t.Fatalf("per-loop source = %q", rr.Source)
	}
	if len(rr.Result.PerLoop) == 0 {
		t.Fatal("no per-loop table in the response")
	}
	if s.store.Len() != 1 {
		t.Fatalf("store has %d records, want the archived per-loop run", s.store.Len())
	}
	resp, raw := get(t, url+"/v1/runs/"+rr.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run get = %d", resp.StatusCode)
	}
	var rec runstore.Record
	if err := json.Unmarshal([]byte(raw), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.PerLoop) == 0 {
		t.Error("archived record carries no per-loop table")
	}
}
