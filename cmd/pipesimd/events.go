package main

// Server-Sent Events streaming of the telemetry bus. Two endpoints:
//
//	GET /v1/events            the global firehose (?kind=, ?job= filters)
//	GET /v1/jobs/{id}/events  one job's stream with exactly-once outcomes
//
// The firehose is live-only best-effort: each connection gets a bounded
// ring subscription, and a consumer that cannot keep up loses the oldest
// events (counted in pipesimd_eventbus_dropped_total) instead of
// backpressuring the simulation path. The per-job stream is stronger:
// terminal point outcomes carry the job's outcome-log index as the SSE
// event ID, the handler replays the log past the client's Last-Event-ID
// before going live, and deduplicates live events by index — so a
// consumer that reconnects (even across a daemon crash, thanks to the
// checkpointed indexes) observes every outcome exactly once.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pipesim/internal/eventbus"
	"pipesim/internal/jobs"
	"pipesim/internal/sweep"
)

// registeredEventKinds is every kind the daemon publishes on the bus. A
// ?kind= filter entry must name one of these exactly or be a dotted prefix
// of one ("job" matches job.start; "job.s" matches nothing): anything else
// is a typo that would silently stream zero events forever, so handleEvents
// rejects it up front.
var registeredEventKinds = []string{
	jobs.KindJobQueued,
	jobs.KindJobStart,
	jobs.KindJobRecovering,
	jobs.KindJobBackoff,
	jobs.KindJobEnd,
	jobs.KindPointOK,
	jobs.KindPointResumed,
	jobs.KindPointRetry,
	jobs.KindPointFailed,
	jobs.KindCkptAppend,
	sweep.KindExperiment,
}

// validEventKind reports whether k exactly names a registered kind or is a
// dotted prefix of one.
func validEventKind(k string) bool {
	for _, rk := range registeredEventKinds {
		if rk == k || strings.HasPrefix(rk, k+".") {
			return true
		}
	}
	return false
}

// defaultSSEHeartbeat is the idle-stream comment interval when -sse-heartbeat
// is not set: frequent enough to defeat common proxy idle timeouts.
const defaultSSEHeartbeat = 15 * time.Second

// sseWriter frames Server-Sent Events over one response.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEWriter upgrades the response to an event stream, or reports that
// the connection cannot stream.
func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	f.Flush() // push the headers now — the first event may be a long wait away
	return &sseWriter{w: w, f: f}, true
}

// event writes one SSE frame: optional id, optional event name, one JSON
// data line.
func (s *sseWriter) event(id, name string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if id != "" {
		fmt.Fprintf(s.w, "id: %s\n", id)
	}
	if name != "" {
		fmt.Fprintf(s.w, "event: %s\n", name)
	}
	if _, err := fmt.Fprintf(s.w, "data: %s\n\n", b); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// comment writes a heartbeat comment frame (ignored by EventSource
// parsers, but keeps the connection from idling out).
func (s *sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// endEvent is the terminal frame of a cleanly closed stream.
type endEvent struct {
	Reason string `json:"reason"` // "job_terminal" or "draining"
}

// handleEvents is the global firehose: every bus event this daemon
// publishes, optionally filtered by ?kind= (comma-separated exact kinds
// or dotted prefixes) and ?job=. The SSE id is the bus-wide sequence
// number. Live-only: events published before the subscription are gone.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	opt := eventbus.SubOptions{Buffer: s.eventsBuffer, Job: r.URL.Query().Get("job")}
	if raw := r.URL.Query().Get("kind"); raw != "" {
		for _, k := range strings.Split(raw, ",") {
			if k = strings.TrimSpace(k); k != "" {
				if !validEventKind(k) {
					s.fail(w, r, errKindBadRequest, fmt.Errorf(
						"unknown event kind %q (registered kinds: %s)",
						k, strings.Join(registeredEventKinds, ", ")))
					return
				}
				opt.Kinds = append(opt.Kinds, k)
			}
		}
	}
	sub := s.bus.Subscribe(opt)
	defer sub.Close()
	sse, ok := newSSEWriter(w)
	if !ok {
		s.fail(w, r, errKindInternal, errors.New("response writer cannot stream"))
		return
	}
	s.streamLive(r, sse, sub, nil, 0)
}

// handleJobEvents streams one job's events with exactly-once terminal
// outcomes. The subscription is opened before the outcome-log snapshot,
// so an outcome is either in the replayed log or arrives on the bus —
// never lost in between; duplicates are cut by the log index carried as
// the SSE event ID. `Last-Event-ID` (or ?after=) resumes past outcomes
// already seen, including across a daemon restart: the indexes are
// persisted in the job checkpoint and rebound on recovery.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	m := s.requireJobs(w, r)
	if m == nil {
		return
	}
	id := r.PathValue("id")
	after := 0
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		if n, err := strconv.Atoi(raw); err == nil && n > 0 {
			after = n
		}
	}
	if raw := r.URL.Query().Get("after"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.fail(w, r, errKindBadRequest, fmt.Errorf("bad after %q", raw))
			return
		}
		after = n
	}

	// Subscribe first, snapshot second: the ordering that makes the
	// union of replay and live stream complete.
	sub := s.bus.Subscribe(eventbus.SubOptions{Buffer: s.eventsBuffer, Job: id})
	defer sub.Close()
	outcomes, view, err := m.Outcomes(id, after)
	if err != nil {
		s.fail(w, r, errKindNotFound, err)
		return
	}
	sse, ok := newSSEWriter(w)
	if !ok {
		s.fail(w, r, errKindInternal, errors.New("response writer cannot stream"))
		return
	}

	// Opening snapshot, then the outcome-log replay past the cursor.
	if err := sse.event("", "job.snapshot", view); err != nil {
		return
	}
	cursor := after
	for _, o := range outcomes {
		if err := sse.event(strconv.Itoa(o.Index), "point."+o.Outcome, o); err != nil {
			return
		}
		if o.Index > cursor {
			cursor = o.Index
		}
	}
	if view.State.Terminal() {
		sse.event("", "end", endEvent{Reason: "job_terminal"})
		return
	}
	s.streamLive(r, sse, sub, &cursor, after)
}

// streamLive pumps bus events to the client until the client goes away,
// the bus drains, or (with a cursor, i.e. a per-job stream) the job
// ends. cursor, when non-nil, deduplicates indexed point outcomes:
// events at or below it were already delivered by the replay.
func (s *server) streamLive(r *http.Request, sse *sseWriter, sub *eventbus.Subscriber, cursor *int, after int) {
	hb := s.sseHeartbeat
	if hb <= 0 {
		hb = defaultSSEHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	emit := func(ev eventbus.Event) (done, ok bool) {
		id := ""
		payload := ev.Data
		if cursor != nil {
			// Per-job stream: indexed outcomes carry their log index as the
			// resumable ID; anything at or below the cursor was already
			// delivered by the replay.
			if o, isOutcome := ev.Data.(jobs.PointOutcome); isOutcome && o.Index > 0 {
				if o.Index <= *cursor {
					return false, true
				}
				*cursor = o.Index
				id = strconv.Itoa(o.Index)
			}
		} else {
			// Firehose: the bus sequence number orders the stream, and the
			// data carries the whole envelope — a multiplexed consumer needs
			// the job and timestamp fields the per-job stream can imply.
			id = strconv.FormatUint(ev.Seq, 10)
			payload = ev
		}
		if err := sse.event(id, ev.Kind, payload); err != nil {
			return false, false
		}
		// A per-job stream closes itself after the job's terminal event.
		if cursor != nil && ev.Kind == jobs.KindJobEnd {
			sse.event("", "end", endEvent{Reason: "job_terminal"})
			return true, false
		}
		return false, true
	}
	drainAndClose := func() {
		for {
			ev, ok := sub.Pop()
			if !ok {
				break
			}
			if done, cont := emit(ev); done || !cont {
				return
			}
		}
		sse.event("", "end", endEvent{Reason: "draining"})
	}

	for {
		// Drain everything buffered before blocking again.
		for {
			ev, ok := sub.Pop()
			if !ok {
				break
			}
			if done, cont := emit(ev); done || !cont {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			// Bus closed (daemon draining): deliver what is buffered, then
			// a terminal frame so the client knows this is a clean close.
			drainAndClose()
			return
		case <-sub.Wait():
		case <-ticker.C:
			if sse.comment("hb") != nil {
				return
			}
		}
	}
}
