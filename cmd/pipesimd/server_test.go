package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipesim"
	"pipesim/internal/runcache"
)

// smallLoop terminates in a few hundred cycles — fast enough to run for
// real inside handler tests.
const smallLoop = `
        li    r1, 10
        li    r2, 0
        setb  b0, loop
loop:   addi  r2, r2, 1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`

// deadlockAsm reads R7 with no load outstanding: the machine wedges and
// the watchdog diagnoses it (same program as TestPublicWatchdogDeadlock).
const deadlockAsm = `
        li   r1, 1
        add  r2, r7, r1
        halt
`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerOpts(t, serverOptions{runLimit: time.Minute})
}

func newTestServerOpts(t *testing.T, opts serverOptions) (*server, *httptest.Server) {
	t.Helper()
	// The run cache (and its optional store tier) is process-global;
	// start every test server against an empty one so cached results from
	// earlier tests cannot change which runs actually simulate.
	runcache.Default.SetStore(nil)
	runcache.Default.Reset()
	s, err := newServer(slog.New(slog.NewTextHandler(io.Discard, nil)), opts)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(func() {
		pipesim.SetRunHook(nil)
		runcache.Default.SetStore(nil)
	})
	if s.jobs != nil {
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.jobs.Close(ctx)
		})
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func decodeErr(t *testing.T, body string) apiError {
	t.Helper()
	var ae apiError
	if err := json.Unmarshal([]byte(body), &ae); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	return ae
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}

	// Not warmed yet: readiness must fail so load balancers hold traffic.
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cold readyz = %d, want 503", resp.StatusCode)
	}
	if err := s.warm(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("warm readyz = %d, want 200", resp.StatusCode)
	}
	// Draining flips it back: in-flight work finishes but no new traffic.
	s.drain()
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", resp.StatusCode)
	}
}

func TestRunEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	resp, body := post(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run = %d\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
	var rr runResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if rr.Result == nil || rr.Result.Cycles == 0 {
		t.Fatalf("run result = %+v, want non-zero cycles", rr.Result)
	}
	if rr.Result.Attribution.Total() != rr.Result.Cycles {
		t.Errorf("attribution total %d != cycles %d",
			rr.Result.Attribution.Total(), rr.Result.Cycles)
	}

	// The run hook fed the metrics registry.
	snap := s.metrics.reg.Snapshot()
	if got := snap[`pipesimd_runs_total{strategy="pipe",outcome="ok"}`]; got != 1 {
		t.Errorf("runs_total = %v, want 1 (snapshot keys: %v)", got, keysLike(snap, "pipesimd_runs_total"))
	}
	if got := snap[`pipesimd_attribution_cycles_total{bucket="issue"}`]; got <= 0 {
		t.Errorf("attribution issue cycles = %v, want > 0", got)
	}
	if got := snap[`pipesimd_http_requests_total{route="/v1/run",code="200"}`]; got != 1 {
		t.Errorf("http_requests_total = %v, want 1", got)
	}

	// Config overlay: an absent field keeps its default, a present one
	// overrides. A 64-byte cache must cost more cycles than the default 128.
	resp, body = post(t, ts.URL+"/v1/run",
		`{"asm": `+quote(smallLoop)+`, "config": {"CacheBytes": 64}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overlay run = %d\n%s", resp.StatusCode, body)
	}
}

// TestRunEndpointCacheStats: the same 3C breakdown the CLI prints comes
// back through POST /v1/run (cache_stats in the result) and lands in the
// pipesimd_cache_miss_total class counters, with the per-class counts
// summing exactly to the run's miss total.
func TestRunEndpointCacheStats(t *testing.T) {
	s, ts := newTestServer(t)

	// Without the knob: no block, no class counters.
	resp, body := post(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain run = %d\n%s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result.CacheStats != nil {
		t.Error("plain run returned cache_stats")
	}

	resp, body = post(t, ts.URL+"/v1/run",
		`{"asm": `+quote(smallLoop)+`, "config": {"CacheStats": true, "CacheBytes": 64}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("introspected run = %d\n%s", resp.StatusCode, body)
	}
	rr = runResponse{}
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	cs := rr.Result.CacheStats
	if cs == nil {
		t.Fatalf("introspected run missing cache_stats:\n%s", body)
	}
	if got := cs.Misses(); got != rr.Result.CacheMisses {
		t.Errorf("classes sum to %d, want CacheMisses = %d", got, rr.Result.CacheMisses)
	}
	if len(cs.Sets) != 64/16 {
		t.Errorf("heatmap has %d sets, want 4", len(cs.Sets))
	}

	// The run hook folded the same counts into /metrics.
	snap := s.metrics.reg.Snapshot()
	var fromMetrics float64
	for _, class := range []string{"compulsory", "capacity", "conflict"} {
		fromMetrics += snap[`pipesimd_cache_miss_total{class="`+class+`"}`]
	}
	if uint64(fromMetrics) != cs.Misses() {
		t.Errorf("metrics classes sum to %v, want %d", fromMetrics, cs.Misses())
	}
}

func TestRunEndpointErrors(t *testing.T) {
	s, ts := newTestServer(t)

	cases := []struct {
		name   string
		body   string
		code   int
		kind   string
		detail string
	}{
		{"malformed json", `{"asm": `, http.StatusBadRequest, errKindBadRequest, ""},
		{"unknown field", `{"nope": 1}`, http.StatusBadRequest, errKindBadRequest, "nope"},
		{"unknown overlay field", `{"config": {"Nope": 1}}`, http.StatusBadRequest, errKindBadRequest, "Nope"},
		{"asm and kernel", `{"asm": "halt", "kernel": 3}`, http.StatusBadRequest, errKindBadRequest, "mutually exclusive"},
		{"bad table", `{"table_ii": "9-9"}`, http.StatusBadRequest, errKindBadRequest, ""},
		{"bad asm", `{"asm": "frobnicate r1"}`, http.StatusBadRequest, errKindBadRequest, ""},
		{"invalid config", `{"asm": "halt", "config": {"CacheBytes": 3}}`,
			http.StatusBadRequest, errKindInvalidConfig, "CacheBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/run", tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d\n%s", resp.StatusCode, tc.code, body)
			}
			ae := decodeErr(t, body)
			if ae.Kind != tc.kind {
				t.Errorf("kind = %q, want %q (%s)", ae.Kind, tc.kind, ae.Error)
			}
			if tc.detail != "" && !strings.Contains(ae.Error, tc.detail) {
				t.Errorf("error %q missing %q", ae.Error, tc.detail)
			}
		})
	}

	snap := s.metrics.reg.Snapshot()
	if got := snap[`pipesimd_errors_total{kind="invalid_config"}`]; got != 1 {
		t.Errorf("invalid_config errors = %v, want 1", got)
	}
	if got := snap[`pipesimd_errors_total{kind="bad_request"}`]; got != 6 {
		t.Errorf("bad_request errors = %v, want 6", got)
	}
}

func TestRunEndpointDeadlock(t *testing.T) {
	s, ts := newTestServer(t)

	resp, body := post(t, ts.URL+"/v1/run",
		`{"asm": `+quote(deadlockAsm)+`, "config": {"WatchdogCycles": 2000}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("deadlock run = %d, want 500\n%s", resp.StatusCode, body)
	}
	ae := decodeErr(t, body)
	if ae.Kind != errKindDeadlock {
		t.Errorf("kind = %q, want %q (%s)", ae.Kind, errKindDeadlock, ae.Error)
	}
	snap := s.metrics.reg.Snapshot()
	if got := snap[`pipesimd_errors_total{kind="deadlock"}`]; got != 1 {
		t.Errorf("deadlock errors = %v, want 1", got)
	}
	if got := snap[`pipesimd_runs_total{strategy="pipe",outcome="deadlock"}`]; got != 1 {
		t.Errorf("runs_total{outcome=deadlock} = %v, want 1", got)
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	// slots runs real (small) simulations so its outcomes carry per-cycle
	// attribution stats; table1 is pure bookkeeping and would not.
	resp, body := get(t, ts.URL+"/v1/sweep?exp=slots")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d\n%s", resp.StatusCode, body)
	}
	var sum struct {
		Schema string `json:"schema"`
		Total  int    `json:"total"`
		Passed int    `json:"passed"`
		Cache  *struct {
			Compulsory uint64 `json:"compulsory"`
			Capacity   uint64 `json:"capacity"`
			Conflict   uint64 `json:"conflict"`
		} `json:"cache"`
		Outcomes []struct {
			ID string `json:"id"`
			OK bool   `json:"ok"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("sweep response not JSON: %v\n%s", err, body)
	}
	if sum.Total != 1 || sum.Passed != 1 || sum.Outcomes[0].ID != "slots" {
		t.Errorf("sweep summary = %+v", sum)
	}
	// slots runs with cache introspection: the summary carries the
	// aggregated 3C breakdown and the daemon folds it into /metrics.
	if sum.Cache == nil {
		t.Fatalf("sweep summary missing cache totals:\n%s", body)
	}
	wantMisses := sum.Cache.Compulsory + sum.Cache.Capacity + sum.Cache.Conflict
	if wantMisses == 0 {
		t.Error("sweep cache totals are all zero")
	}
	snap := s.metrics.reg.Snapshot()
	if got := snap[`pipesimd_sweep_experiments_total{outcome="ok"}`]; got != 1 {
		t.Errorf("sweep_experiments_total = %v, want 1", got)
	}
	if got := snap[`pipesimd_attribution_cycles_total{bucket="issue"}`]; got <= 0 {
		t.Errorf("sweep attribution issue cycles = %v, want > 0", got)
	}
	var fromMetrics float64
	for _, class := range []string{"compulsory", "capacity", "conflict"} {
		fromMetrics += snap[`pipesimd_cache_miss_total{class="`+class+`"}`]
	}
	if uint64(fromMetrics) != wantMisses {
		t.Errorf("metrics classes sum to %v, want the summary's %d", fromMetrics, wantMisses)
	}

	if resp, body := get(t, ts.URL+"/v1/sweep?exp=nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment = %d\n%s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/v1/sweep?parallel=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad parallel = %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/sweep?timeout=never"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout = %d, want 400", resp.StatusCode)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments = %d", resp.StatusCode)
	}
	var items []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal([]byte(body), &items); err != nil {
		t.Fatalf("experiments response not JSON: %v", err)
	}
	found := false
	for _, it := range items {
		if it.ID == "table1" {
			found = true
		}
	}
	if !found {
		t.Errorf("experiment list missing table1: %+v", items)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Generate a little traffic so counters are non-zero.
	post(t, ts.URL+"/v1/run", `{"asm": `+quote(smallLoop)+`}`)

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE pipesimd_http_requests_total counter",
		"# TYPE pipesimd_http_request_seconds histogram",
		"# TYPE pipesimd_http_in_flight gauge",
		"pipesimd_build_info{",
		`pipesimd_runs_total{strategy="pipe",outcome="ok"} 1`,
		"pipesimd_run_cycles_bucket{",
		`pipesimd_attribution_cycles_total{bucket="issue"}`,
		`pipesimd_http_requests_total{route="/v1/run",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version = %d", resp.StatusCode)
	}
	var v struct {
		Module string `json:"Module"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("version response not JSON: %v\n%s", err, body)
	}
	if v.Module == "" {
		t.Errorf("version module empty: %s", body)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline = %d", resp.StatusCode)
	}
	_ = body
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts.URL+"/v1/run")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run = %d, want 405", resp.StatusCode)
	}
}

// quote JSON-encodes a string for embedding in a request body.
func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// keysLike lists snapshot keys with a prefix, for test failure messages.
func keysLike(snap map[string]float64, prefix string) []string {
	var out []string
	for k := range snap {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}
