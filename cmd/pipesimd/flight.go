package main

import (
	"sync"
	"time"

	"pipesim/internal/obs"
)

// flightEntry is one archived post-mortem: the flight-recorder tail of a
// failed simulation, kept for GET /debug/flightrecorder so an operator can
// inspect what the machine was doing when it died without reproducing the
// failure.
type flightEntry struct {
	RequestID string            `json:"request_id"`
	Kind      string            `json:"kind"`
	Error     string            `json:"error"`
	Time      string            `json:"time"`
	Events    []obs.EventRecord `json:"events"`
}

// defaultFlightArchiveEntries bounds the archive: each entry holds at most
// one flight-recorder ring (256 events by default, 32 bytes each), so the
// full archive stays under a megabyte.
const defaultFlightArchiveEntries = 32

// flightArchive is a bounded, concurrency-safe ring of the most recent
// flight entries, newest first.
type flightArchive struct {
	mu      sync.Mutex
	max     int
	entries []*flightEntry // newest at index 0
}

func newFlightArchive(max int) *flightArchive {
	if max < 1 {
		max = defaultFlightArchiveEntries
	}
	return &flightArchive{max: max}
}

// add archives one failure's flight-recorder snapshot.
func (a *flightArchive) add(requestID, kind string, err error, events []obs.Event) {
	e := &flightEntry{
		RequestID: requestID,
		Kind:      kind,
		Error:     err.Error(),
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Events:    obs.Records(events),
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append([]*flightEntry{e}, a.entries...)
	if len(a.entries) > a.max {
		a.entries = a.entries[:a.max]
	}
}

// snapshot returns the archived entries, newest first. The slice is fresh;
// the entries are shared but immutable once archived.
func (a *flightArchive) snapshot() []*flightEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*flightEntry, len(a.entries))
	copy(out, a.entries)
	return out
}
