// Command pipeasm assembles PIPE assembly and prints the disassembled
// image (addresses, encodings and mnemonics), or just validates it.
//
//	pipeasm prog.s            # assemble and disassemble
//	pipeasm -check prog.s     # assemble, report errors only
package main

import (
	"flag"
	"fmt"
	"os"

	"pipesim"
)

func main() {
	check := flag.Bool("check", false, "validate only; print nothing on success")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pipeasm [-check] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipeasm: %v\n", err)
		os.Exit(1)
	}
	prog, err := pipesim.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipeasm: %v\n", err)
		os.Exit(1)
	}
	if !*check {
		fmt.Print(prog.Disassemble())
	}
}
