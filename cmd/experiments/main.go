// Command experiments regenerates every table and figure from the paper's
// evaluation section (plus the ablations and extensions documented in
// DESIGN.md) and prints them as text tables.
//
// Experiments run on a fault-isolated parallel worker pool: a failing,
// panicking or timed-out experiment is reported in the final pass/fail
// summary without aborting the rest of the sweep, and the process exits
// non-zero only after every experiment has had its chance.
//
// Result tables go to stdout; diagnostics are structured log/slog records
// on stderr (text by default, JSON with -log json) so long sweeps can be
// tailed and scraped like any other service log.
//
// Usage:
//
//	experiments                    # run everything, one worker per CPU
//	experiments -list              # list experiment IDs
//	experiments -exp fig5b         # run one experiment
//	experiments -parallel 2        # limit the worker pool
//	experiments -timeout 2m        # per-experiment deadline
//	experiments -progress          # log each experiment as it finishes
//	experiments -metrics out.json  # write machine-readable sweep metrics
//	experiments -resume sweep.ckpt # checkpoint the sweep; rerun only missing experiments
//	experiments -log json          # JSON log records instead of text
//	experiments -runcache=false    # disable simulation-result memoization
//	experiments -version           # print build/VCS info and exit
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pipesim/internal/jobs"
	"pipesim/internal/runcache"
	"pipesim/internal/sweep"
	"pipesim/internal/version"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by ID (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csv      = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
		plot     = flag.Bool("plot", false, "draw ASCII charts instead of aligned tables")
		parallel = flag.Int("parallel", 0, "number of concurrent experiments (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-experiment deadline (0 = none)")
		progress = flag.Bool("progress", false, "log each experiment's status and wall time as it finishes")
		metrics  = flag.String("metrics", "", "write machine-readable sweep metrics (JSON) to this file")
		resume   = flag.String("resume", "", "checkpoint file (JSONL): completed experiments are replayed from it, the rest run and append to it")
		logMode  = flag.String("log", "text", "log handler: text or json")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		useCache = flag.Bool("runcache", true, "memoize simulation results by (config, program) content hash")
		showVer  = flag.Bool("version", false, "print module, version, VCS revision and dirty bit, then exit")
	)
	flag.Parse()
	runcache.Default.SetEnabled(*useCache)

	if *showVer {
		fmt.Println(version.Get())
		return
	}

	log, err := newLogger(os.Stderr, *logMode, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range sweep.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := sweep.Experiments()
	if *exp != "" {
		e, ok := sweep.Lookup(*exp)
		if !ok {
			log.Error("unknown experiment", "id", *exp, "hint", "try -list")
			os.Exit(1)
		}
		run = []sweep.Experiment{e}
	}

	// -resume: replay completed experiments from the checkpoint (keyed by
	// content hash, so a stale checkpoint of a different benchmark image
	// never satisfies a lookup) and run only the missing ones. The same
	// file is appended to as the remaining experiments finish, so a sweep
	// interrupted at any point picks up where it left off.
	var replayed []sweep.Outcome
	if *resume != "" {
		var err error
		replayed, run, err = splitResumed(*resume, run, log)
		if err != nil {
			log.Error("reading resume checkpoint", "path", *resume, "err", err)
			os.Exit(1)
		}
		log.Info("resuming sweep from checkpoint", "path", *resume,
			"replayed", len(replayed), "remaining", len(run))
	}

	v := version.Get()
	log.Info("sweep starting", "experiments", len(run), "parallel", *parallel,
		"timeout", *timeout, "revision", v.ShortRevision(), "go", v.GoVersion)

	opt := sweep.Options{Workers: *parallel, Timeout: *timeout}
	if *progress {
		opt.Progress = func(o sweep.Outcome, done, total int) {
			l := log.With("experiment", o.Experiment.ID, "done", done, "total", total,
				"elapsed", o.Elapsed.Round(time.Millisecond))
			if o.Err != nil {
				l.Error("experiment failed", "err", o.Err)
			} else {
				l.Info("experiment finished")
			}
		}
	}
	sum := sweep.RunAll(run, opt)
	if *resume != "" {
		if err := appendResumed(*resume, sum, log); err != nil {
			log.Error("appending to resume checkpoint", "path", *resume, "err", err)
			os.Exit(1)
		}
		// Fold the replayed outcomes back in, checkpoint-first, so tables,
		// metrics and the pass/fail summary cover the whole sweep.
		sum.Outcomes = append(replayed, sum.Outcomes...)
	}
	if *useCache {
		rc := runcache.Default.Stats()
		sum.RunCache = &rc
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, sum); err != nil {
			log.Error("writing metrics", "path", *metrics, "err", err)
			os.Exit(1)
		}
		log.Info("wrote sweep metrics", "path", *metrics)
	}
	for _, o := range sum.Outcomes {
		if o.Err != nil {
			log.Error("experiment failed", "experiment", o.Experiment.ID, "err", o.Err)
			continue
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", o.Result.Title, o.Result.CSV())
		case *plot:
			fmt.Println(o.Result.Plot())
		default:
			fmt.Println(o.Result.Format())
		}
	}
	finished := []any{"passed", sum.Passed(), "total", len(sum.Outcomes),
		"elapsed", sum.Elapsed.Round(time.Millisecond)}
	if sum.RunCache != nil {
		finished = append(finished, "runcache_hits", sum.RunCache.Hits,
			"runcache_misses", sum.RunCache.Misses, "runcache_entries", sum.RunCache.Size)
	}
	log.Info("sweep finished", finished...)
	if sum.Err() != nil {
		os.Exit(1)
	}
}

// newLogger builds the text or JSON slog handler selected on the command
// line (shared flag convention with cmd/pipesimd).
func newLogger(w *os.File, mode, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want text or json)", mode)
	}
}

func writeMetrics(path string, sum *sweep.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitResumed reads the checkpoint and partitions the experiment list:
// experiments whose content hash already has a replayable record come back
// as synthesized outcomes, the rest still need to run. A missing file is
// an empty checkpoint (first run); corrupt trailing records are discarded
// with a warning by the reader.
func splitResumed(path string, run []sweep.Experiment, log *slog.Logger) ([]sweep.Outcome, []sweep.Experiment, error) {
	recs, err := jobs.ReadCheckpoint(path, log)
	if err != nil {
		return nil, nil, err
	}
	img, err := sweep.BenchmarkImage()
	if err != nil {
		return nil, nil, err
	}
	fp := img.Fingerprint()
	byKey := make(map[string]jobs.PointResult, len(recs))
	for _, r := range recs {
		byKey[r.Key] = r
	}
	var replayed []sweep.Outcome
	var remaining []sweep.Experiment
	for _, e := range run {
		r, ok := byKey[jobs.CatalogKey(e.ID, fp).String()]
		if !ok || len(r.Series) == 0 {
			remaining = append(remaining, e)
			continue
		}
		res, err := sweep.ResultFromCompact(r.Series, e.ID, e.Title)
		if err != nil {
			log.Warn("checkpoint record not replayable, re-running experiment",
				"experiment", e.ID, "err", err)
			remaining = append(remaining, e)
			continue
		}
		log.Info("experiment served from checkpoint", "experiment", e.ID)
		replayed = append(replayed, sweep.Outcome{Experiment: e, Result: res})
	}
	return replayed, remaining, nil
}

// appendResumed durably records this run's successful outcomes so the next
// -resume invocation skips them. Failed experiments are deliberately not
// recorded — a resume retries them.
func appendResumed(path string, sum *sweep.Summary, log *slog.Logger) error {
	ok := 0
	for _, o := range sum.Outcomes {
		if o.Err == nil {
			ok++
		}
	}
	if ok == 0 {
		return nil
	}
	img, err := sweep.BenchmarkImage()
	if err != nil {
		return err
	}
	fp := img.Fingerprint()
	ck, err := jobs.OpenCheckpoint(path)
	if err != nil {
		return err
	}
	defer ck.Close()
	for _, o := range sum.Outcomes {
		if o.Err != nil || o.Result == nil {
			continue
		}
		pr := jobs.PointResult{
			Point:    "exp:" + o.Experiment.ID,
			Key:      jobs.CatalogKey(o.Experiment.ID, fp).String(),
			Valid:    true,
			ElapsedS: o.Elapsed.Seconds(),
			Attempts: 1,
		}
		for _, s := range o.Result.Series {
			for _, p := range s.Points {
				if p.Valid {
					pr.Cycles += p.Cycles
				}
			}
		}
		if t, ok := sweep.ResultTotals(o.Result); ok {
			pr.Attr = &t
		}
		if pr.Series, err = o.Result.CompactJSON(); err != nil {
			return err
		}
		if err := ck.Append(pr); err != nil {
			return err
		}
	}
	log.Info("checkpointed finished experiments", "path", path, "appended", ok)
	return nil
}
