// Command experiments regenerates every table and figure from the paper's
// evaluation section (plus the ablations and extensions documented in
// DESIGN.md) and prints them as text tables.
//
// Usage:
//
//	experiments              # run everything
//	experiments -list        # list experiment IDs
//	experiments -exp fig5b   # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"pipesim/internal/sweep"
)

func main() {
	var (
		exp  = flag.String("exp", "", "run a single experiment by ID (default: all)")
		list = flag.Bool("list", false, "list experiment IDs and exit")
		csv  = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
		plot = flag.Bool("plot", false, "draw ASCII charts instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range sweep.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := sweep.Experiments()
	if *exp != "" {
		e, ok := sweep.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run = []sweep.Experiment{e}
	}
	for _, e := range run {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", res.Title, res.CSV())
		case *plot:
			fmt.Println(res.Plot())
		default:
			fmt.Println(res.Format())
		}
	}
}
