// Command experiments regenerates every table and figure from the paper's
// evaluation section (plus the ablations and extensions documented in
// DESIGN.md) and prints them as text tables.
//
// Experiments run on a fault-isolated parallel worker pool: a failing,
// panicking or timed-out experiment is reported in the final pass/fail
// summary without aborting the rest of the sweep, and the process exits
// non-zero only after every experiment has had its chance.
//
// Usage:
//
//	experiments                    # run everything, one worker per CPU
//	experiments -list              # list experiment IDs
//	experiments -exp fig5b         # run one experiment
//	experiments -parallel 2        # limit the worker pool
//	experiments -timeout 2m        # per-experiment deadline
//	experiments -progress          # report each experiment as it finishes
//	experiments -metrics out.json  # write machine-readable sweep metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pipesim/internal/sweep"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by ID (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csv      = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
		plot     = flag.Bool("plot", false, "draw ASCII charts instead of aligned tables")
		parallel = flag.Int("parallel", 0, "number of concurrent experiments (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-experiment deadline (0 = none)")
		progress = flag.Bool("progress", false, "print each experiment's status and wall time as it finishes")
		metrics  = flag.String("metrics", "", "write machine-readable sweep metrics (JSON) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range sweep.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := sweep.Experiments()
	if *exp != "" {
		e, ok := sweep.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run = []sweep.Experiment{e}
	}

	opt := sweep.Options{Workers: *parallel, Timeout: *timeout}
	if *progress {
		opt.Progress = func(o sweep.Outcome, done, total int) {
			status := "ok"
			if o.Err != nil {
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-12s %-4s %6.2fs\n",
				done, total, o.Experiment.ID, status, o.Elapsed.Seconds())
		}
	}
	sum := sweep.RunAll(run, opt)
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := sum.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing metrics: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, o := range sum.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.Experiment.ID, o.Err)
			continue
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", o.Result.Title, o.Result.CSV())
		case *plot:
			fmt.Println(o.Result.Plot())
		default:
			fmt.Println(o.Result.Format())
		}
	}
	fmt.Fprint(os.Stderr, sum.String())
	if sum.Err() != nil {
		os.Exit(1)
	}
}
