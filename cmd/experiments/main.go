// Command experiments regenerates every table and figure from the paper's
// evaluation section (plus the ablations and extensions documented in
// DESIGN.md) and prints them as text tables.
//
// Experiments run on a fault-isolated parallel worker pool: a failing,
// panicking or timed-out experiment is reported in the final pass/fail
// summary without aborting the rest of the sweep, and the process exits
// non-zero only after every experiment has had its chance.
//
// Result tables go to stdout; diagnostics are structured log/slog records
// on stderr (text by default, JSON with -log json) so long sweeps can be
// tailed and scraped like any other service log.
//
// Usage:
//
//	experiments                    # run everything, one worker per CPU
//	experiments -list              # list experiment IDs
//	experiments -exp fig5b         # run one experiment
//	experiments -parallel 2        # limit the worker pool
//	experiments -timeout 2m        # per-experiment deadline
//	experiments -progress          # log each experiment as it finishes
//	experiments -metrics out.json  # write machine-readable sweep metrics
//	experiments -log json          # JSON log records instead of text
//	experiments -runcache=false    # disable simulation-result memoization
//	experiments -version           # print build/VCS info and exit
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"pipesim/internal/runcache"
	"pipesim/internal/sweep"
	"pipesim/internal/version"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment by ID (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csv      = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
		plot     = flag.Bool("plot", false, "draw ASCII charts instead of aligned tables")
		parallel = flag.Int("parallel", 0, "number of concurrent experiments (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "per-experiment deadline (0 = none)")
		progress = flag.Bool("progress", false, "log each experiment's status and wall time as it finishes")
		metrics  = flag.String("metrics", "", "write machine-readable sweep metrics (JSON) to this file")
		logMode  = flag.String("log", "text", "log handler: text or json")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		useCache = flag.Bool("runcache", true, "memoize simulation results by (config, program) content hash")
		showVer  = flag.Bool("version", false, "print module, version, VCS revision and dirty bit, then exit")
	)
	flag.Parse()
	runcache.Default.SetEnabled(*useCache)

	if *showVer {
		fmt.Println(version.Get())
		return
	}

	log, err := newLogger(os.Stderr, *logMode, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range sweep.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	run := sweep.Experiments()
	if *exp != "" {
		e, ok := sweep.Lookup(*exp)
		if !ok {
			log.Error("unknown experiment", "id", *exp, "hint", "try -list")
			os.Exit(1)
		}
		run = []sweep.Experiment{e}
	}

	v := version.Get()
	log.Info("sweep starting", "experiments", len(run), "parallel", *parallel,
		"timeout", *timeout, "revision", v.ShortRevision(), "go", v.GoVersion)

	opt := sweep.Options{Workers: *parallel, Timeout: *timeout}
	if *progress {
		opt.Progress = func(o sweep.Outcome, done, total int) {
			l := log.With("experiment", o.Experiment.ID, "done", done, "total", total,
				"elapsed", o.Elapsed.Round(time.Millisecond))
			if o.Err != nil {
				l.Error("experiment failed", "err", o.Err)
			} else {
				l.Info("experiment finished")
			}
		}
	}
	sum := sweep.RunAll(run, opt)
	if *metrics != "" {
		if err := writeMetrics(*metrics, sum); err != nil {
			log.Error("writing metrics", "path", *metrics, "err", err)
			os.Exit(1)
		}
		log.Info("wrote sweep metrics", "path", *metrics)
	}
	for _, o := range sum.Outcomes {
		if o.Err != nil {
			log.Error("experiment failed", "experiment", o.Experiment.ID, "err", o.Err)
			continue
		}
		switch {
		case *csv:
			fmt.Printf("# %s\n%s\n", o.Result.Title, o.Result.CSV())
		case *plot:
			fmt.Println(o.Result.Plot())
		default:
			fmt.Println(o.Result.Format())
		}
	}
	log.Info("sweep finished", "passed", sum.Passed(), "total", len(sum.Outcomes),
		"elapsed", sum.Elapsed.Round(time.Millisecond))
	if sum.Err() != nil {
		os.Exit(1)
	}
}

// newLogger builds the text or JSON slog handler selected on the command
// line (shared flag convention with cmd/pipesimd).
func newLogger(w *os.File, mode, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want text or json)", mode)
	}
}

func writeMetrics(path string, sum *sweep.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
