package main

import (
	"os"
	"path/filepath"
	"testing"

	"pipesim/internal/bench"
)

// writeBaseline drops a fixture baseline file into dir.
func writeBaseline(t *testing.T, dir, label string, nsA, nsB float64) string {
	t.Helper()
	b := bench.New(label, []bench.Benchmark{
		{Name: "BenchmarkA", Iterations: 10, NsPerOp: nsA},
		{Name: "BenchmarkB", Iterations: 10, NsPerOp: nsB},
	})
	path := filepath.Join(dir, "BENCH_"+label+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestCompareExitCodes pins the acceptance criterion end to end: the
// compare subcommand exits non-zero on an injected >10% regression, zero
// on a clean diff, and zero (with a warning) in -warn-only mode.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	seed := writeBaseline(t, dir, "seed", 1000, 1000)
	bad := writeBaseline(t, dir, "bad", 1200, 1000) // BenchmarkA +20%
	good := writeBaseline(t, dir, "good", 1050, 990)

	if code := run([]string{"compare", "-threshold", "10", seed, bad}); code != 1 {
		t.Errorf("regressed compare exit = %d, want 1", code)
	}
	if code := run([]string{"compare", "-threshold", "10", seed, good}); code != 0 {
		t.Errorf("clean compare exit = %d, want 0", code)
	}
	if code := run([]string{"compare", "-threshold", "10", "-warn-only", seed, bad}); code != 0 {
		t.Errorf("warn-only compare exit = %d, want 0", code)
	}
	// A loose threshold accepts the same diff.
	if code := run([]string{"compare", "-threshold", "25", seed, bad}); code != 0 {
		t.Errorf("loose-threshold compare exit = %d, want 0", code)
	}
}

func TestCompareBadInputs(t *testing.T) {
	dir := t.TempDir()
	seed := writeBaseline(t, dir, "seed", 1000, 1000)
	if code := run([]string{"compare", seed, filepath.Join(dir, "missing.json")}); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if code := run([]string{"compare", seed}); code != 2 {
		t.Errorf("missing arg exit = %d, want 2", code)
	}
	if code := run([]string{"bogus-subcommand"}); code != 2 {
		t.Errorf("bad subcommand exit = %d, want 2", code)
	}
	if code := run(nil); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
}
