// Command benchjson turns `go test -bench` output into the stable
// pipesim-bench/v1 JSON baseline format and compares two baselines for
// regressions. scripts/bench.sh is the usual driver; CI runs the compare
// in warn-only mode against the committed seed baseline.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson format -label seed -o BENCH_seed.json
//	benchjson compare -threshold 10 BENCH_seed.json BENCH_dev.json
//	benchjson compare -warn-only BENCH_seed.json BENCH_ci.json
//
// compare exits 1 when any benchmark's ns/op regressed beyond the
// threshold (default 10%), unless -warn-only is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"pipesim/internal/bench"
	"pipesim/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "format":
		return runFormat(args[1:])
	case "compare":
		return runCompare(args[1:])
	case "-version", "version":
		fmt.Println(version.Get())
		return 0
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchjson format [-label NAME] [-o FILE]       read go-test bench output on stdin, write JSON
  benchjson compare [-threshold PCT] [-warn-only] OLD.json NEW.json`)
}

func runFormat(args []string) int {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	label := fs.String("label", "dev", "baseline label (becomes BENCH_<label>.json by convention)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	bs, err := bench.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(bs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		return 1
	}
	base := bench.New(*label, bs)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := base.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks (label %q)\n", len(bs), *label)
	return 0
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent ns/op growth")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit 0 (CI smoke mode)")
	only := fs.String("only", "", "compare only benchmarks matching this regexp")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		return 2
	}
	old, err := readBaseline(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	new, err := readBaseline(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -only pattern: %v\n", err)
			return 2
		}
		old, new = old.Filter(re), new.Filter(re)
		if len(new.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -only %q matches no benchmark in %s\n", *only, fs.Arg(1))
			return 1
		}
	}
	c := bench.Compare(old, new, *threshold)
	fmt.Printf("comparing %q (old) vs %q (new), threshold %.1f%%\n\n%s",
		old.Label, new.Label, *threshold, c.Format())
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.1f%%\n",
			len(regs), *threshold)
		if *warnOnly {
			fmt.Fprintln(os.Stderr, "benchjson: warn-only mode, not failing")
			return 0
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchjson: no regressions")
	return 0
}

func readBaseline(path string) (*bench.Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := bench.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
