// Command pipesimtop is a live terminal dashboard for a running pipesimd:
// job progress bars, point throughput, retry counts and queue depth,
// driven by the daemon's SSE telemetry firehose (GET /v1/events) plus a
// periodic /metrics scrape.
//
// The dashboard bootstraps its job table from GET /v1/jobs, then follows
// the event stream: every point outcome advances its job's bar the moment
// the daemon checkpoints it. If the stream drops (daemon restart, network
// blip) it reconnects with backoff and re-bootstraps, so a recovered
// daemon's resumed jobs show up again automatically.
//
// Usage:
//
//	pipesimtop                          # watch http://127.0.0.1:8974
//	pipesimtop -addr http://host:8974   # point at another daemon
//	pipesimtop -refresh 500ms           # redraw faster
//	pipesimtop -once                    # print one snapshot and exit (no SSE)
//	pipesimtop -no-color                # plain output, no ANSI (for pipes)
//	pipesimtop -version                 # print build/VCS info and exit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"pipesim/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("pipesimtop", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8974", "pipesimd base URL")
	refresh := fs.Duration("refresh", 2*time.Second, "redraw interval")
	once := fs.Bool("once", false, "print one snapshot and exit instead of following the event stream")
	noColor := fs.Bool("no-color", false, "plain output: no ANSI colors or screen clearing")
	showVer := fs.Bool("version", false, "print build/VCS info and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(out, version.Get())
		return 0
	}

	base := strings.TrimRight(*addr, "/")
	top := newTop(base, time.Now)
	if *once {
		if err := top.bootstrap(); err != nil {
			fmt.Fprintf(os.Stderr, "pipesimtop: %v\n", err)
			return 1
		}
		top.scrapeMetrics()
		top.render(out, *noColor)
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go top.followEvents(ctx)

	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	if err := top.bootstrap(); err != nil {
		fmt.Fprintf(os.Stderr, "pipesimtop: %v (will keep retrying)\n", err)
	}
	for {
		top.scrapeMetrics()
		if !*noColor {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, cursor home
		}
		top.render(out, *noColor)
		select {
		case <-ctx.Done():
			return 0
		case <-ticker.C:
		}
	}
}

// jobRow is one job's dashboard state, merged from the /v1/jobs bootstrap
// and the live event stream.
type jobRow struct {
	ID        string
	State     string
	Total     int
	Completed int
	Resumed   int
	Retries   int
	Failed    int
	Created   time.Time
}

// envelope mirrors the firehose SSE data payload (eventbus.Event JSON).
type envelope struct {
	Seq    uint64          `json:"seq"`
	TimeMS int64           `json:"time_ms"`
	Kind   string          `json:"kind"`
	Job    string          `json:"job"`
	Data   json.RawMessage `json:"data"`
}

// jobEvent is the subset of the daemon's job.* payload the dashboard uses.
type jobEvent struct {
	State           string `json:"state"`
	TotalPoints     int    `json:"total_points"`
	CompletedPoints int    `json:"completed_points"`
	ResumedPoints   int    `json:"resumed_points"`
	RetriesUsed     int    `json:"retries_used"`
	FailedPoints    int    `json:"failed_points"`
}

// top is the dashboard model: everything the render needs, guarded by one
// mutex because the SSE follower and the redraw loop race on it.
type top struct {
	base string
	now  func() time.Time

	mu         sync.Mutex
	jobs       map[string]*jobRow
	events     uint64      // firehose events observed this session
	pointTimes []time.Time // recent point completions, for throughput
	streamErr  string      // last stream problem, shown in the header

	// scraped from /metrics
	queueDepth  float64
	subscribers float64
	dropped     float64
	missClass   map[string]float64 // pipesimd_cache_miss_total by class label
	haveMetrics bool
}

func newTop(base string, now func() time.Time) *top {
	return &top{base: base, now: now, jobs: make(map[string]*jobRow)}
}

// bootstrap seeds the job table from GET /v1/jobs (already sorted by
// submit time).
func (t *top) bootstrap() error {
	resp, err := http.Get(t.base + "/v1/jobs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /v1/jobs: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var list struct {
		Jobs []struct {
			ID              string    `json:"id"`
			State           string    `json:"state"`
			Created         time.Time `json:"created"`
			TotalPoints     int       `json:"total_points"`
			CompletedPoints int       `json:"completed_points"`
			ResumedPoints   int       `json:"resumed_points"`
			RetriesUsed     int       `json:"retries_used"`
			FailedPoints    []any     `json:"failed_points"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return fmt.Errorf("decoding /v1/jobs: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range list.Jobs {
		t.jobs[j.ID] = &jobRow{
			ID: j.ID, State: j.State, Created: j.Created,
			Total: j.TotalPoints, Completed: j.CompletedPoints,
			Resumed: j.ResumedPoints, Retries: j.RetriesUsed, Failed: len(j.FailedPoints),
		}
	}
	return nil
}

// followEvents consumes the firehose, reconnecting with backoff until the
// context ends. Each (re)connect re-bootstraps: events missed while
// disconnected are reflected in the job snapshots.
func (t *top) followEvents(ctx context.Context) {
	backoff := time.Second
	for ctx.Err() == nil {
		err := t.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		t.mu.Lock()
		if err != nil {
			t.streamErr = err.Error()
		} else {
			t.streamErr = "stream closed, reconnecting"
		}
		t.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 8*time.Second {
			backoff *= 2
		}
		t.bootstrap()
	}
}

func (t *top) streamOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/v1/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/events: %s", resp.Status)
	}
	t.mu.Lock()
	t.streamErr = ""
	t.mu.Unlock()
	sr := newSSEReader(resp.Body)
	for {
		ev, data, err := sr.next()
		if err != nil {
			return err
		}
		t.apply(ev, data)
	}
}

// sseReader decodes Server-Sent Events frames: (event name, data line).
// Comments and IDs are skipped — the dashboard is a live view, it never
// resumes.
type sseReader struct {
	br *bufio.Reader
}

func newSSEReader(r io.Reader) *sseReader { return &sseReader{br: bufio.NewReader(r)} }

func (s *sseReader) next() (event, data string, err error) {
	sawField := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if sawField {
				return event, data, nil
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event:"):
			event, sawField = strings.TrimSpace(line[len("event:"):]), true
		case strings.HasPrefix(line, "data:"):
			data, sawField = strings.TrimSpace(line[len("data:"):]), true
		case strings.HasPrefix(line, "id:"):
			sawField = true
		}
	}
}

// apply folds one firehose event into the model.
func (t *top) apply(kind, data string) {
	var env envelope
	if err := json.Unmarshal([]byte(data), &env); err != nil {
		return
	}
	if env.Kind == "" {
		env.Kind = kind
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	row := t.jobs[env.Job]
	switch {
	case strings.HasPrefix(env.Kind, "job."):
		if env.Job == "" {
			return
		}
		if row == nil {
			row = &jobRow{ID: env.Job, Created: t.now()}
			t.jobs[env.Job] = row
		}
		var je jobEvent
		if err := json.Unmarshal(env.Data, &je); err != nil {
			return
		}
		row.State = je.State
		row.Total = je.TotalPoints
		row.Completed = je.CompletedPoints
		row.Resumed = je.ResumedPoints
		row.Retries = je.RetriesUsed
		row.Failed = je.FailedPoints
	case env.Kind == "point.ok" || env.Kind == "point.resumed":
		t.pointTimes = append(t.pointTimes, t.now())
		if row != nil {
			row.Completed++
			if env.Kind == "point.resumed" {
				row.Resumed++
			}
		}
	case env.Kind == "point.retry":
		if row != nil {
			row.Retries++
		}
	case env.Kind == "point.failed":
		if row != nil {
			row.Failed++
		}
	}
}

// throughputWindow is the sliding window for the points/s figure.
const throughputWindow = 10 * time.Second

// throughputLocked returns recent point completions per second. Caller
// holds mu.
func (t *top) throughputLocked() float64 {
	cut := t.now().Add(-throughputWindow)
	i := 0
	for i < len(t.pointTimes) && t.pointTimes[i].Before(cut) {
		i++
	}
	t.pointTimes = t.pointTimes[i:]
	// No samples in the window short-circuits to exactly 0 — and the guard
	// keeps this from ever dividing by a degenerate window if the constant
	// becomes a flag.
	if len(t.pointTimes) == 0 || throughputWindow <= 0 {
		return 0
	}
	return float64(len(t.pointTimes)) / throughputWindow.Seconds()
}

// scrapeMetrics pulls the operator numbers the event stream does not
// carry: queue depth, subscriber count and slow-consumer drops.
func (t *top) scrapeMetrics() {
	resp, err := http.Get(t.base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	vals := parseMetrics(string(body))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.haveMetrics = true
	t.queueDepth = vals["pipesimd_jobs_queue_depth"]
	t.subscribers = vals["pipesimd_eventbus_subscribers"]
	t.dropped = vals["pipesimd_eventbus_dropped_total"]
	t.missClass = parseLabelled(string(body), "pipesimd_cache_miss_total", "class")
}

// parseLabelled extracts one single-label family from Prometheus text:
// family{label="v"} 12 becomes map["v"]12. Everything else (other
// families, other label sets) is ignored.
func parseLabelled(text, family, label string) map[string]float64 {
	out := make(map[string]float64)
	prefix := family + "{" + label + `="`
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		val, rest, ok := strings.Cut(line[len(prefix):], `"`)
		if !ok || !strings.HasPrefix(rest, "}") {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(rest[1:]), 64)
		if err != nil {
			continue
		}
		out[val] = f
	}
	return out
}

// parseMetrics extracts un-labelled families from Prometheus text.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, "{") {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out
}

// ANSI styles, elided in -no-color mode.
const (
	ansiReset = "\x1b[0m"
	ansiBold  = "\x1b[1m"
	ansiDim   = "\x1b[2m"
	ansiGreen = "\x1b[32m"
	ansiRed   = "\x1b[31m"
	ansiCyan  = "\x1b[36m"
)

// render draws one frame of the dashboard.
func (t *top) render(w io.Writer, plain bool) {
	style := func(code, s string) string {
		if plain {
			return s
		}
		return code + s + ansiReset
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	fmt.Fprintf(w, "%s  %s", style(ansiBold, "pipesimtop"), t.base)
	if t.haveMetrics {
		fmt.Fprintf(w, "   queue %d   streams %d   drops %d",
			int(t.queueDepth), int(t.subscribers), int(t.dropped))
	}
	fmt.Fprintf(w, "   %.1f points/s   %d events", t.throughputLocked(), t.events)
	if t.streamErr != "" {
		fmt.Fprintf(w, "   %s", style(ansiRed, "["+t.streamErr+"]"))
	}
	fmt.Fprintln(w)

	// Miss-class panel: the daemon exports these only after a run or sweep
	// with Config.CacheStats enabled, so an empty map just hides the row.
	if len(t.missClass) > 0 {
		fmt.Fprintf(w, "  %s  compulsory %d   capacity %d   conflict %d\n",
			style(ansiBold, "cache misses"),
			int(t.missClass["compulsory"]), int(t.missClass["capacity"]), int(t.missClass["conflict"]))
	}

	if len(t.jobs) == 0 {
		fmt.Fprintln(w, style(ansiDim, "  no jobs yet — submit a sweep with POST /v1/jobs"))
		return
	}
	rows := make([]*jobRow, 0, len(t.jobs))
	for _, r := range t.jobs {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].Created.Equal(rows[j].Created) {
			return rows[i].Created.Before(rows[j].Created)
		}
		return rows[i].ID < rows[j].ID
	})
	for _, r := range rows {
		stateStyle := ansiCyan
		switch r.State {
		case "done":
			stateStyle = ansiGreen
		case "failed", "cancelled":
			stateStyle = ansiRed
		}
		fmt.Fprintf(w, "  %-14s %s %s %d/%d", r.ID,
			style(stateStyle, fmt.Sprintf("%-10s", r.State)),
			progressBar(r.Completed, r.Total, 20), r.Completed, r.Total)
		if r.Resumed > 0 {
			fmt.Fprintf(w, "  resumed %d", r.Resumed)
		}
		if r.Retries > 0 {
			fmt.Fprintf(w, "  retries %d", r.Retries)
		}
		if r.Failed > 0 {
			fmt.Fprintf(w, "  %s", style(ansiRed, fmt.Sprintf("failed %d", r.Failed)))
		}
		fmt.Fprintln(w)
	}
}

// progressBar renders [#####.....] scaled to width cells.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat(".", width) + "]"
	}
	if done > total {
		done = total
	}
	filled := done * width / total
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}
