package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const fakeJobs = `{"jobs":[
  {"id":"j-aaa","state":"running","created":"2026-01-02T10:00:00Z",
   "total_points":4,"completed_points":1,"resumed_points":1,"retries_used":0},
  {"id":"j-bbb","state":"done","created":"2026-01-02T09:00:00Z",
   "total_points":2,"completed_points":2,"failed_points":[]}
]}`

const fakeMetrics = `# HELP pipesimd_jobs_queue_depth Jobs admitted but not yet finished.
# TYPE pipesimd_jobs_queue_depth gauge
pipesimd_jobs_queue_depth 3
pipesimd_eventbus_subscribers 2
pipesimd_eventbus_dropped_total 7
pipesimd_http_requests_total{route="/metrics",code="200"} 9
pipesimd_cache_miss_total{class="compulsory"} 202
pipesimd_cache_miss_total{class="capacity"} 28798
pipesimd_cache_miss_total{class="conflict"} 11
`

// fakeDaemon serves canned /v1/jobs and /metrics plus a scripted SSE
// firehose.
func fakeDaemon(t *testing.T, events []string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, fakeJobs)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, fakeMetrics)
	})
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		f := w.(http.Flusher)
		for i, data := range events {
			fmt.Fprintf(w, "id: %d\nevent: x\ndata: %s\n\n", i+1, data)
		}
		f.Flush()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestOnceSnapshot(t *testing.T) {
	ts := fakeDaemon(t, nil)
	var buf bytes.Buffer
	if code := run([]string{"-once", "-no-color", "-addr", ts.URL}, &buf); code != 0 {
		t.Fatalf("run -once exited %d\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"queue 3", "streams 2", "drops 7",
		"compulsory 202", "capacity 28798", "conflict 11",
		"j-aaa", "running", "1/4", "resumed 1",
		"j-bbb", "done", "2/2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	// The bootstrap listing is oldest-first: the done job was created
	// earlier and must render above the running one.
	if strings.Index(out, "j-bbb") > strings.Index(out, "j-aaa") {
		t.Errorf("jobs not in submit order:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("-no-color output contains ANSI escapes:\n%s", out)
	}
}

func TestOnceAgainstDeadDaemon(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-once", "-addr", "http://127.0.0.1:1"}, &buf); code != 1 {
		t.Fatalf("run -once against nothing exited %d, want 1", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-version"}, &buf); code != 0 || buf.Len() == 0 {
		t.Fatalf("run -version: code %d, output %q", code, buf.String())
	}
}

// TestApplyEvents drives the model with firehose envelopes and asserts the
// rows and throughput window advance.
func TestApplyEvents(t *testing.T) {
	clock := time.Date(2026, 1, 2, 10, 0, 0, 0, time.UTC)
	tp := newTop("http://x", func() time.Time { return clock })

	tp.apply("job.queued", `{"kind":"job.queued","job":"j-1","data":{"state":"queued","total_points":3}}`)
	tp.apply("job.start", `{"kind":"job.start","job":"j-1","data":{"state":"running","total_points":3,"completed_points":0}}`)
	tp.apply("point.ok", `{"kind":"point.ok","job":"j-1","data":{"index":1,"point":"conv/128","outcome":"ok"}}`)
	tp.apply("point.retry", `{"kind":"point.retry","job":"j-1","data":{"point":"conv/256","outcome":"retry","error":"boom"}}`)
	tp.apply("point.failed", `{"kind":"point.failed","job":"j-1","data":{"index":2,"point":"conv/256","outcome":"failed"}}`)
	tp.apply("ckpt.append", `{"kind":"ckpt.append","job":"j-1","data":{"point":"conv/128","seq":1}}`)
	tp.apply("garbage", `not json`)

	row := tp.jobs["j-1"]
	if row == nil {
		t.Fatal("no row for j-1")
	}
	if row.State != "running" || row.Total != 3 || row.Completed != 1 || row.Retries != 1 || row.Failed != 1 {
		t.Errorf("row after events: %+v", row)
	}
	if tp.events != 6 {
		t.Errorf("events counted = %d, want 6 (garbage dropped)", tp.events)
	}

	// Terminal snapshot overrides the incremental counts.
	tp.apply("job.end", `{"kind":"job.end","job":"j-1","data":{"state":"failed","total_points":3,"completed_points":2,"failed_points":1}}`)
	if row.State != "failed" || row.Completed != 2 {
		t.Errorf("row after job.end: %+v", row)
	}

	// Throughput counts only the last 10s of completions.
	tp.mu.Lock()
	got := tp.throughputLocked()
	tp.mu.Unlock()
	if got != 0.1 { // 1 completion / 10s window
		t.Errorf("throughput = %v, want 0.1", got)
	}
	clock = clock.Add(time.Minute)
	tp.mu.Lock()
	got = tp.throughputLocked()
	tp.mu.Unlock()
	if got != 0 {
		t.Errorf("throughput after the window = %v, want 0", got)
	}
}

// TestFollowEventsAgainstFakeServer runs the real SSE consumer against a
// scripted stream and renders the result.
func TestFollowEventsAgainstFakeServer(t *testing.T) {
	ts := fakeDaemon(t, []string{
		`{"kind":"job.start","job":"j-aaa","data":{"state":"running","total_points":4,"completed_points":1,"resumed_points":1}}`,
		`{"kind":"point.ok","job":"j-aaa","data":{"index":2,"point":"conv/256","outcome":"ok"}}`,
		`{"kind":"point.ok","job":"j-aaa","data":{"index":3,"point":"conv/512","outcome":"ok"}}`,
	})
	tp := newTop(ts.URL, time.Now)
	if err := tp.bootstrap(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// streamOnce consumes the scripted events, then the handler returns and
	// the read errors out — exactly one pass.
	if err := tp.streamOnce(ctx); err == nil {
		t.Fatal("streamOnce returned nil on a finite stream")
	}
	tp.scrapeMetrics()

	var buf bytes.Buffer
	tp.render(&buf, true)
	out := buf.String()
	for _, want := range []string{"j-aaa", "3/4", "resumed 1", "queue 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSSEReader(t *testing.T) {
	in := ": hello\n\nid: 4\nevent: point.ok\ndata: {\"a\":1}\n\n: hb\n\nevent: end\ndata: {}\n\n"
	sr := newSSEReader(strings.NewReader(in))
	ev, data, err := sr.next()
	if err != nil || ev != "point.ok" || data != `{"a":1}` {
		t.Fatalf("frame 1: %q %q %v", ev, data, err)
	}
	ev, data, err = sr.next()
	if err != nil || ev != "end" || data != "{}" {
		t.Fatalf("frame 2: %q %q %v", ev, data, err)
	}
	if _, _, err = sr.next(); err == nil {
		t.Fatal("expected EOF after the stream")
	}
}

func TestProgressBar(t *testing.T) {
	for _, tc := range []struct {
		done, total int
		want        string
	}{
		{0, 4, "[....................]"},
		{2, 4, "[##########..........]"},
		{4, 4, "[####################]"},
		{5, 4, "[####################]"},
		{0, 0, "[....................]"},
	} {
		if got := progressBar(tc.done, tc.total, 20); got != tc.want {
			t.Errorf("progressBar(%d,%d) = %s, want %s", tc.done, tc.total, got, tc.want)
		}
	}
}

// TestOnceNoJobs: a daemon with nothing submitted still renders a usable
// snapshot — the header plus an explicit empty state, not a blank screen.
func TestOnceNoJobs(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"jobs":[]}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pipesimd_jobs_queue_depth 0\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if code := run([]string{"-once", "-no-color", "-addr", ts.URL}, &buf); code != 0 {
		t.Fatalf("run -once exited %d\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"no jobs yet", "0.0 points/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("empty snapshot missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("empty snapshot leaked a NaN:\n%s", out)
	}
}

// TestThroughputNoSamples: the rolling window must return exactly 0 with
// no completions recorded — never NaN or a panic from an empty slice.
func TestThroughputNoSamples(t *testing.T) {
	tp := newTop("http://x", time.Now)
	tp.mu.Lock()
	got := tp.throughputLocked()
	tp.mu.Unlock()
	if got != 0 {
		t.Errorf("throughput with no samples = %v, want exactly 0", got)
	}
}

func TestParseLabelled(t *testing.T) {
	got := parseLabelled(fakeMetrics, "pipesimd_cache_miss_total", "class")
	want := map[string]float64{"compulsory": 202, "capacity": 28798, "conflict": 11}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("class %q = %v, want %v", k, got[k], v)
		}
	}
	if other := parseLabelled(fakeMetrics, "pipesimd_http_requests_total", "class"); len(other) != 0 {
		t.Errorf("mismatched label parsed %v, want empty", other)
	}
}

func TestParseMetrics(t *testing.T) {
	vals := parseMetrics(fakeMetrics)
	if vals["pipesimd_jobs_queue_depth"] != 3 || vals["pipesimd_eventbus_dropped_total"] != 7 {
		t.Errorf("parsed: %v", vals)
	}
	if _, ok := vals["pipesimd_http_requests_total"]; ok {
		t.Error("labelled family should be skipped")
	}
}
