// Command llgen inspects the generated Livermore-loop benchmark workload:
// it prints Table I (inner-loop sizes and iteration counts), the exact
// instruction accounting that reaches the paper's 150,575 total, and
// optionally the disassembly.
//
//	llgen             # print the accounting table
//	llgen -dis        # also dump the disassembled program
//	llgen -kernel 5   # disassemble a single loop's standalone program
package main

import (
	"flag"
	"fmt"
	"os"

	"pipesim/internal/kernels"
)

func main() {
	var (
		dis    = flag.Bool("dis", false, "dump the full benchmark disassembly")
		kernel = flag.Int("kernel", 0, "disassemble one loop's standalone program (1..14)")
	)
	flag.Parse()

	if *kernel != 0 {
		img, err := kernels.KernelProgram(*kernel)
		if err != nil {
			fail(err)
		}
		fmt.Print(img.Disassemble())
		return
	}

	img, counts, err := kernels.Program()
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-5s %-22s %10s %10s %10s %10s %12s\n",
		"loop", "kernel", "inner(B)", "iters", "prologue", "epilogue", "executed")
	info := kernels.TableI()
	for i, kc := range counts.PerKernel {
		fmt.Printf("%-5d %-22s %10d %10d %10d %10d %12d\n",
			kc.Index, info[i].Name, kc.Body*4, kc.Iterations, kc.Prologue, kc.Epilogue, kc.Executed())
	}
	fmt.Printf("filler NOPs: %d\n", counts.Filler)
	fmt.Printf("total executed instructions: %d (paper: %d)\n", counts.Total, kernels.TotalInstructions)
	fmt.Printf("static text: %d instructions, data: %d words\n", len(img.Text), len(img.Data))
	if *dis {
		fmt.Print(img.Disassemble())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "llgen: %v\n", err)
	os.Exit(1)
}
