// The diff subcommand is the differential performance explainer's CLI:
//
//	pipesim diff -store-dir runs/ <key-a> <key-b>   # two archived runs
//	pipesim diff a.json b.json                      # result/record/sweep files
//	pipesim diff -fail-on-drift golden.json new.json  # CI drift gate
//
// Each operand is a 64-hex content-addressed run key (looked up in
// -store-dir) or a JSON file: an archived pipesim-runs/v1 record, a
// public `pipesim -json` Result, or a pipesim-sweep/v1 metrics document
// from `experiments -metrics`. Two sweep documents get the catalog
// point-by-point drift report; two runs get the pipesim-compare/v1
// explainer. A live run can diff itself against a baseline with
// `pipesim -diff-against <key-or-file>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pipesim"
	"pipesim/internal/compare"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
	"pipesim/internal/stats"
)

// diffSide is one resolved operand: exactly one of run/sweep is set.
type diffSide struct {
	run   *compare.Run
	sweep []byte // raw pipesim-sweep/v1 document
}

func diffMain(argv []string) {
	fs := flag.NewFlagSet("pipesim diff", flag.ExitOnError)
	storeDir := fs.String("store-dir", "", "run archive directory for key operands")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	outPath := fs.String("o", "", "also write the report JSON to this file")
	failOnDrift := fs.Bool("fail-on-drift", false, "exit 1 when the sides differ (CI gate)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pipesim diff [flags] <a> <b>\n\n"+
			"Each operand is a 64-hex run key (requires -store-dir), an archived\n"+
			"run record, a `pipesim -json` result file, or an `experiments\n"+
			"-metrics` sweep document. Flags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}

	a := loadSide(fs.Arg(0), *storeDir)
	b := loadSide(fs.Arg(1), *storeDir)

	var (
		report  any
		dirty   bool
		summary string
	)
	switch {
	case a.sweep != nil && b.sweep != nil:
		r, err := compare.CompareSweepJSON(a.sweep, b.sweep)
		if err != nil {
			fail(err)
		}
		report, dirty, summary = r, !r.Clean(), r.Summary
		if !*jsonOut {
			renderCatalog(r)
		}
	case a.run != nil && b.run != nil:
		r := compare.Compare(*a.run, *b.run)
		report, dirty, summary = r, r.CycleDelta != 0, r.Summary
		if !*jsonOut {
			renderReport(r)
		}
	default:
		fail(fmt.Errorf("cannot diff a sweep document against a single run: %s vs %s", fs.Arg(0), fs.Arg(1)))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fail(err)
		}
	}
	if *outPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*outPath, append(raw, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if *failOnDrift && dirty {
		fmt.Fprintf(os.Stderr, "pipesim diff: drift detected: %s\n", summary)
		os.Exit(1)
	}
}

// loadSide resolves one operand to a comparison side.
func loadSide(arg, storeDir string) diffSide {
	if key, err := runcache.ParseKey(arg); err == nil {
		if storeDir == "" {
			fail(fmt.Errorf("operand %s.. is a run key; -store-dir is required to resolve it", arg[:12]))
		}
		store, err := runstore.Open(storeDir, runstore.Options{})
		if err != nil {
			fail(err)
		}
		rec, ok := store.Get(key)
		if !ok {
			fail(fmt.Errorf("run %s.. not found in %s", arg[:12], storeDir))
		}
		label := fmt.Sprintf("%s/%dB", rec.Config.Fetch, rec.Config.CacheBytes)
		run := compare.FromSim(label, rec.Key, &rec.Sim, rec.PerLoop)
		return diffSide{run: &run}
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		fail(err)
	}
	return sniffSide(filepath.Base(arg), raw)
}

// sniffSide classifies a JSON document by its schema field: an archived
// run record, a sweep metrics document, or (schema-less) a public Result.
func sniffSide(label string, raw []byte) diffSide {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		fail(fmt.Errorf("%s: %w", label, err))
	}
	switch head.Schema {
	case runstore.Schema:
		var rec runstore.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		run := compare.FromSim(label, rec.Key, &rec.Sim, rec.PerLoop)
		return diffSide{run: &run}
	case "pipesim-sweep/v1":
		return diffSide{sweep: raw}
	case "":
		var res pipesim.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		if res.Cycles == 0 {
			fail(fmt.Errorf("%s: not a pipesim result, run record or sweep document", label))
		}
		run := resultRun(label, &res)
		return diffSide{run: &run}
	default:
		fail(fmt.Errorf("%s: unsupported schema %q", label, head.Schema))
		panic("unreachable")
	}
}

// resultRun adapts the public Result shape to a comparison side.
func resultRun(label string, res *pipesim.Result) compare.Run {
	run := compare.Run{
		Label:        label,
		Key:          res.Key,
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
		CacheHits:    res.CacheHits,
		CacheMisses:  res.CacheMisses,
		PerLoop:      res.PerLoop,
	}
	a := res.Attribution
	run.Buckets = [stats.NumCycleBuckets]uint64{
		stats.CycleIssue:        a.Issue,
		stats.CycleFetchStarved: a.FetchStarved,
		stats.CycleLDQWait:      a.LDQWait,
		stats.CycleQueueFull:    a.QueueFull,
		stats.CycleDrain:        a.Drain,
		stats.CycleOther:        a.Other,
	}
	if cs := res.CacheStats; cs != nil {
		run.Cache = &stats.CacheStats{Compulsory: cs.Compulsory, Capacity: cs.Capacity, Conflict: cs.Conflict}
	}
	return run
}

// renderReport prints the human explainer for a two-run comparison.
func renderReport(r *compare.Report) {
	fmt.Printf("%s\n\n", r.Summary)
	fmt.Printf("%-14s %12s %12s %12s\n", "", nameOf(r.A, "a"), nameOf(r.B, "b"), "delta")
	fmt.Printf("%-14s %12d %12d %+12d\n", "cycles", r.A.Cycles, r.B.Cycles, r.CycleDelta)
	if r.A.CPI != 0 || r.B.CPI != 0 {
		fmt.Printf("%-14s %12.3f %12.3f %+12.3f\n", "CPI", r.A.CPI, r.B.CPI, r.B.CPI-r.A.CPI)
	}
	if r.A.HitRatePct != 0 || r.B.HitRatePct != 0 {
		fmt.Printf("%-14s %11.1f%% %11.1f%% %+11.1fpp\n", "hit rate", r.A.HitRatePct, r.B.HitRatePct, r.HitRateDeltaPct)
	}
	fmt.Printf("\n%-14s %12s %12s %12s %8s\n", "attribution", "a", "b", "delta", "share")
	for _, d := range r.Attribution {
		fmt.Printf("%-14s %12d %12d %+12d %7.1f%%\n", d.Bucket, d.A, d.B, d.Delta, d.SharePct)
	}
	if len(r.MissClasses) > 0 {
		fmt.Printf("\n%-14s %12s %12s %12s\n", "miss class", "a", "b", "delta")
		for _, c := range r.MissClasses {
			fmt.Printf("%-14s %12d %12d %+12d\n", c.Class, c.A, c.B, c.Delta)
		}
	}
	if len(r.PerLoop) > 0 {
		fmt.Printf("\n%-5s %-21s %12s %12s %12s %8s %10s\n",
			"loop", "name", "a", "b", "delta", "share", "miss Δ")
		for i, l := range r.PerLoop {
			if i == 10 {
				fmt.Printf("(… %d more loops)\n", len(r.PerLoop)-i)
				break
			}
			name := l.Name
			if l.Loop == 0 {
				name = "(outside)"
			}
			fmt.Printf("%-5d %-21s %12d %12d %+12d %7.1f%% %+10d\n",
				l.Loop, name, l.A, l.B, l.Delta, l.SharePct, l.MissDelta)
		}
	}
	fmt.Println()
}

// renderCatalog prints the human drift report for two sweep documents.
func renderCatalog(r *compare.CatalogReport) {
	fmt.Printf("%s\n", r.Summary)
	for i, d := range r.Drift {
		if i == 10 {
			fmt.Printf("(… %d more drifted points)\n", len(r.Drift)-i)
			break
		}
		fmt.Printf("  drift    %s\n", d)
	}
	for i, p := range r.MissingInB {
		if i == 10 {
			fmt.Printf("(… %d more missing points)\n", len(r.MissingInB)-i)
			break
		}
		fmt.Printf("  missing  %s\n", p)
	}
	for i, p := range r.MissingInA {
		if i == 5 {
			fmt.Printf("(… %d more new points)\n", len(r.MissingInA)-i)
			break
		}
		fmt.Printf("  new      %s\n", p)
	}
}

func nameOf(ref compare.RunRef, fallback string) string {
	if ref.Label != "" {
		if len(ref.Label) > 12 {
			return ref.Label[:12]
		}
		return ref.Label
	}
	return fallback
}
