// Command pipesim runs one simulation of the PIPE processor and prints the
// measurements.
//
// With no -asm flag it runs the paper's Livermore-loop benchmark:
//
//	pipesim -strategy pipe -cache 128 -line 16 -iq 16 -iqb 16 -access 6 -bus 8
//	pipesim -strategy conventional -cache 512 -access 1 -bus 4
//	pipesim -asm prog.s -strategy pipe
//
// Observability:
//
//	pipesim -json                  # machine-readable result (full Result struct)
//	pipesim -perloop               # per-Livermore-loop cycle/miss/stall table
//	pipesim -timeline trace.json   # Chrome-trace timeline (chrome://tracing, Perfetto)
//	pipesim -flightrec-dump fr.json  # flight-recorder tail as Chrome-trace JSON,
//	                                 # written even when the run fails (post-mortem)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"pipesim"
	"pipesim/internal/compare"
	"pipesim/internal/runstore"
	"pipesim/internal/version"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		diffMain(os.Args[2:])
		return
	}
	var (
		strategy  = flag.String("strategy", "pipe", "fetch strategy: pipe, conventional or tib")
		cache     = flag.Int("cache", 128, "instruction cache size in bytes")
		line      = flag.Int("line", 16, "cache line size in bytes")
		iq        = flag.Int("iq", 16, "PIPE instruction queue size in bytes")
		iqb       = flag.Int("iqb", 16, "PIPE instruction queue buffer size in bytes")
		noTP      = flag.Bool("no-true-prefetch", false, "use the original chip's guaranteed-execution fetch policy")
		deep      = flag.Bool("deep-prefetch", false, "refill the IQB whenever a line of space is free (beyond-paper extension)")
		native    = flag.Bool("native", false, "run in the native 16/32-bit parcel instruction format (paper parameter 1)")
		dcache    = flag.Int("dcache", 0, "on-chip data cache size in bytes (0 = none, the paper's machine)")
		tibN      = flag.Int("tib-entries", 4, "TIB entry count")
		access    = flag.Int("access", 1, "memory access time in cycles")
		bus       = flag.Int("bus", 4, "input bus width in bytes")
		pipelined = flag.Bool("pipelined", false, "pipelined external memory")
		dataPrio  = flag.Bool("data-priority", false, "give data requests priority over instruction fetches")
		asmPath   = flag.String("asm", "", "run a PIPE assembly file instead of the Livermore benchmark")
		kernel    = flag.Int("kernel", 0, "run a single Livermore loop (1..14) instead of the full benchmark")
		verbose   = flag.Bool("v", false, "print the full measurement breakdown")
		traceN    = flag.Uint64("trace", 0, "print the first N retired instructions (cycle, PC, disassembly)")
		jsonOut   = flag.Bool("json", false, "print the result as JSON instead of text")
		perloop   = flag.Bool("perloop", false, "collect and print per-Livermore-loop statistics (benchmark workloads only)")
		timeline  = flag.String("timeline", "", "write a Chrome-trace timeline of the run to this file")
		frDump    = flag.String("flightrec-dump", "", "write the flight recorder's recent-event tail to this file as Chrome-trace JSON (written on failure too)")
		frDepth   = flag.Int("flightrec-depth", 0, "flight recorder depth in events (0 = default 256, negative disables)")
		noSkip    = flag.Bool("no-skip-ahead", false, "step every cycle instead of event-driven skip-ahead (results are bit-identical; for A/B timing)")
		cstats    = flag.Bool("cachestats", false, "classify every cache miss (compulsory/capacity/conflict) and print the per-set heatmap and hot miss PCs")
		ctop      = flag.Int("cache-top", 0, "hot miss-PC table size with -cachestats (0 = default 10, negative keeps every PC)")
		storeDir  = flag.String("store-dir", "", "archive the completed run into this run-store directory")
		diffBase  = flag.String("diff-against", "", "after the run, print a compare report against this baseline (run key with -store-dir, or a result/record JSON file) instead of the normal output")
		showVer   = flag.Bool("version", false, "print module, version, VCS revision and dirty bit, then exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.Get())
		return
	}

	cfg := pipesim.DefaultConfig()
	cfg.Strategy = pipesim.Strategy(*strategy)
	cfg.CacheBytes = *cache
	cfg.LineBytes = *line
	cfg.IQBytes = *iq
	cfg.IQBBytes = *iqb
	cfg.TruePrefetch = !*noTP
	cfg.DeepPrefetch = *deep
	cfg.NativeFormat = *native
	cfg.DCacheBytes = *dcache
	cfg.TIBEntries = *tibN
	cfg.MemAccessTime = *access
	cfg.BusWidthBytes = *bus
	cfg.PipelinedMemory = *pipelined
	cfg.InstrPriority = !*dataPrio
	cfg.FlightRecorderDepth = *frDepth
	cfg.NoSkipAhead = *noSkip
	cfg.CacheStats = *cstats
	cfg.CacheTopPCs = *ctop

	var (
		prog *pipesim.Program
		err  error
	)
	switch {
	case *asmPath != "":
		src, rerr := os.ReadFile(*asmPath)
		if rerr != nil {
			fail(rerr)
		}
		prog, err = pipesim.Assemble(string(src))
	case *kernel != 0:
		prog, err = pipesim.LivermoreKernel(*kernel)
	default:
		prog, _, err = pipesim.LivermoreProgram()
	}
	if err != nil {
		fail(err)
	}

	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		fail(err)
	}
	if *traceN > 0 {
		sim.TraceTo(os.Stdout, *traceN)
	}
	if *perloop {
		if err := sim.CollectPerLoop(); err != nil {
			fail(err)
		}
	}
	var tl *pipesim.Timeline
	if *timeline != "" {
		tl = pipesim.NewTimeline()
		sim.Observe(tl)
	}
	res, err := sim.Run()
	// The flight-recorder dump is a post-mortem tool: write it before
	// reporting any run error, so a deadlocked or machine-checked run still
	// leaves its last moments on disk.
	if *frDump != "" {
		if derr := dumpFlight(*frDump, sim.RecentEvents()); derr != nil {
			fail(derr)
		}
	}
	if err != nil {
		fail(err)
	}
	if tl != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fail(err)
		}
		if _, err := tl.WriteTo(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pipesim: wrote %d timeline events to %s\n", tl.Events(), *timeline)
	}
	if *storeDir != "" {
		store, serr := runstore.Open(*storeDir, runstore.Options{})
		if serr != nil {
			fail(serr)
		}
		if serr := sim.Archive(store); serr != nil {
			fail(serr)
		}
		fmt.Fprintf(os.Stderr, "pipesim: archived run %s to %s\n", res.Key[:12], *storeDir)
	}
	if *diffBase != "" {
		base := loadSide(*diffBase, *storeDir)
		if base.run == nil {
			fail(fmt.Errorf("-diff-against %s: baseline is not a single run", *diffBase))
		}
		rep := compare.Compare(*base.run, resultRun("this-run", res))
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fail(err)
			}
		} else {
			renderReport(rep)
		}
		return
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("CPI           %.3f\n", res.CPI())
	a := res.Attribution
	fmt.Printf("attribution   issue=%d fetch-starved=%d ldq-wait=%d queue-full=%d drain=%d other=%d\n",
		a.Issue, a.FetchStarved, a.LDQWait, a.QueueFull, a.Drain, a.Other)
	if res.PerLoop != nil {
		fmt.Printf("\n%-5s %-21s %10s %8s %12s %8s %8s %10s\n",
			"loop", "name", "cycles", "cyc%", "instructions", "misses", "flushes", "bus words")
		for _, l := range res.PerLoop {
			name := l.Name
			if l.Loop == 0 {
				name = "(outside)"
			}
			fmt.Printf("%-5d %-21s %10d %7.1f%% %12d %8d %8d %10d\n",
				l.Loop, name, l.Cycles, 100*float64(l.Cycles)/float64(res.Cycles),
				l.Instructions, l.CacheMisses, l.BranchFlush, l.OffChipWords)
		}
		fmt.Println()
	}
	if res.CacheStats != nil {
		printCacheStats(res)
	}
	if *verbose {
		fmt.Printf("branches      %d (%d taken, %d flushes)\n", res.Branches, res.TakenBranches, res.BranchFlushes)
		fmt.Printf("loads/stores  %d / %d\n", res.Loads, res.Stores)
		fmt.Printf("fpu ops       %d\n", res.FPUOps)
		fmt.Printf("stalls        ldq-empty=%d queue-full=%d fetch-empty=%d\n",
			res.StallLDQEmpty, res.StallQueueFull, res.StallFetchEmpty)
		fmt.Printf("icache        hits=%d misses=%d demand=%d prefetch=%d blocked=%d\n",
			res.CacheHits, res.CacheMisses, res.DemandFetches, res.Prefetches, res.PrefetchBlocks)
		var kinds []string
		for k := range res.MemAccepted {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("bus traffic   ")
		for _, k := range kinds {
			fmt.Printf("%s=%d ", k, res.MemAccepted[k])
		}
		fmt.Printf("(words delivered %d)\n", res.WordsDelivered)
	}
}

// printCacheStats renders the introspection report: the 3C class breakdown,
// eviction counts, the per-set heatmap and the hot miss-PC table.
func printCacheStats(res *pipesim.Result) {
	cs := res.CacheStats
	total := cs.Misses()
	pct := func(n uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	fmt.Printf("\nmiss classes  compulsory=%d (%.1f%%) capacity=%d (%.1f%%) conflict=%d (%.1f%%)\n",
		cs.Compulsory, pct(cs.Compulsory), cs.Capacity, pct(cs.Capacity), cs.Conflict, pct(cs.Conflict))
	deadPct := 0.0
	if cs.Evictions > 0 {
		deadPct = 100 * float64(cs.DeadEvictions) / float64(cs.Evictions)
	}
	fmt.Printf("evictions     %d (%d dead on eviction, %.1f%%)\n", cs.Evictions, cs.DeadEvictions, deadPct)
	var maxMiss uint64
	for _, s := range cs.Sets {
		if s.Misses > maxMiss {
			maxMiss = s.Misses
		}
	}
	fmt.Printf("\n%-4s %10s %8s %10s %6s  %s\n", "set", "accesses", "misses", "evictions", "dead", "miss heat")
	for i, s := range cs.Sets {
		bar := ""
		if maxMiss > 0 {
			bar = barOf(int(20 * s.Misses / maxMiss))
		}
		fmt.Printf("%-4d %10d %8d %10d %6d  %s\n", i, s.Accesses, s.Misses, s.Evictions, s.DeadEvictions, bar)
	}
	if len(cs.HotPCs) > 0 {
		fmt.Printf("\n%-10s %8s  %s\n", "miss pc", "misses", "loop")
		for _, h := range cs.HotPCs {
			loc := "-"
			if h.Loop != 0 {
				loc = fmt.Sprintf("loop %d (%s)", h.Loop, h.Label)
			}
			fmt.Printf("%#-10x %8d  %s\n", h.PC, h.Misses, loc)
		}
	}
	fmt.Println()
}

func barOf(n int) string {
	if n < 1 {
		n = 1
	}
	b := make([]rune, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// dumpFlight writes a flight-recorder snapshot as Chrome-trace JSON.
func dumpFlight(path string, events []pipesim.ProbeEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pipesim.WriteFlightTrace(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pipesim: wrote %d flight-recorder events to %s\n", len(events), path)
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
	os.Exit(1)
}
