module pipesim

go 1.22
