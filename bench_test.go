// Benchmarks regenerating every table and figure of the paper's evaluation
// section (plus the ablations and extensions indexed in DESIGN.md). Each
// benchmark runs the corresponding experiment end-to-end on the 150,575-
// instruction Livermore workload and reports the simulated cycle counts as
// custom metrics, so `go test -bench=. -benchmem` reproduces the paper's
// series alongside the harness cost.
package pipesim_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"pipesim"
	"pipesim/internal/core"
	"pipesim/internal/mem"
	"pipesim/internal/runcache"
	"pipesim/internal/sweep"
	"pipesim/internal/tracing"
)

// uncached disables the process-wide run cache for one benchmark so it
// measures real simulation work. With memoization on, every iteration past
// the first would return a stored result and the timing would be
// meaningless as a simulator-speed baseline.
func uncached(b *testing.B) {
	b.Helper()
	runcache.Default.SetEnabled(false)
	b.Cleanup(func() { runcache.Default.SetEnabled(true) })
}

// reportFigure runs a figure experiment b.N times and reports the simulated
// cycles of every (series, cache-size) point as metrics named
// "<series>_<size>B_cycles".
func reportFigure(b *testing.B, id string) {
	b.Helper()
	uncached(b)
	exp, ok := sweep.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *sweep.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, s := range res.Series {
		for _, p := range s.Points {
			if !p.Valid {
				continue
			}
			b.ReportMetric(float64(p.Cycles), fmt.Sprintf("%s_%dB_cycles", sanitize(s.Label), p.CacheBytes))
		}
	}
}

// BenchmarkTableI regenerates Table I (inner loop sizes of the generated
// Livermore workload) and reports each loop's size in bytes.
func BenchmarkTableI(b *testing.B) {
	exp, _ := sweep.Lookup("table1")
	var res *sweep.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Series[0].Points {
		b.ReportMetric(float64(p.Cycles), fmt.Sprintf("loop%d_bytes", p.CacheBytes))
	}
}

// BenchmarkFigure4a: cycles vs cache size, memory access time 1,
// non-pipelined, 4-byte input bus (conventional + four PIPE configs).
func BenchmarkFigure4a(b *testing.B) { reportFigure(b, "fig4a") }

// BenchmarkFigure4b: access time 1, non-pipelined, 8-byte bus.
func BenchmarkFigure4b(b *testing.B) { reportFigure(b, "fig4b") }

// BenchmarkFigure5a: access time 6, non-pipelined, 4-byte bus.
func BenchmarkFigure5a(b *testing.B) { reportFigure(b, "fig5a") }

// BenchmarkFigure5b: access time 6, non-pipelined, 8-byte bus.
func BenchmarkFigure5b(b *testing.B) { reportFigure(b, "fig5b") }

// BenchmarkFigure6a: identical machine to Figure 5b (the paper re-plots it
// at a different scale).
func BenchmarkFigure6a(b *testing.B) { reportFigure(b, "fig6a") }

// BenchmarkFigure6b: access time 6, 8-byte bus, pipelined memory.
func BenchmarkFigure6b(b *testing.B) { reportFigure(b, "fig6b") }

// BenchmarkAccessTime2 and 3 back the paper's "memory access times of 2 and
// 3 clock cycles showed similar results" claim.
func BenchmarkAccessTime2(b *testing.B) { reportFigure(b, "access2") }

// BenchmarkAccessTime3: see BenchmarkAccessTime2.
func BenchmarkAccessTime3(b *testing.B) { reportFigure(b, "access3") }

// BenchmarkAblationTruePrefetch quantifies the paper's observation that the
// original chip's guaranteed-execution fetch policy costs performance
// relative to true off-chip prefetch.
func BenchmarkAblationTruePrefetch(b *testing.B) { reportFigure(b, "noprefetch") }

// BenchmarkAblationPriority compares instruction- versus data-priority
// arbitration at the memory interface.
func BenchmarkAblationPriority(b *testing.B) { reportFigure(b, "priority") }

// BenchmarkExtensionTIB evaluates the Target Instruction Buffer front end
// of paper §2.1.
func BenchmarkExtensionTIB(b *testing.B) { reportFigure(b, "tib") }

// BenchmarkAnalysisKnee isolates the knee mechanism: cycles per iteration
// of a synthetic loop of growing size against a fixed 128-byte cache.
func BenchmarkAnalysisKnee(b *testing.B) { reportFigure(b, "knee") }

// BenchmarkAnalysisPerLoop attributes the benchmark's cycles to each of the
// 14 Livermore loops per fetch strategy.
func BenchmarkAnalysisPerLoop(b *testing.B) { reportFigure(b, "perloop") }

// BenchmarkParamIQSize sweeps the paper's simulation parameters (7) and
// (8): the IQ and IQB sizes at a fixed line size.
func BenchmarkParamIQSize(b *testing.B) { reportFigure(b, "iqsize") }

// BenchmarkParamSlots sweeps the PBR delay-slot count (paper §3.1.3).
func BenchmarkParamSlots(b *testing.B) { reportFigure(b, "slots") }

// BenchmarkExtensionDCache compares spending on-chip bytes on a bigger
// instruction cache versus an instruction/data split (the paper's
// concluding suggestion for mature-technology densities).
func BenchmarkExtensionDCache(b *testing.B) { reportFigure(b, "dcache") }

// BenchmarkExtensionFormatSim simulates paper parameter (1) dynamically:
// the benchmark in the fixed versus the native 16/32-bit encoding.
func BenchmarkExtensionFormatSim(b *testing.B) { reportFigure(b, "formatsim") }

// BenchmarkExtensionFormat reports each inner loop's byte size in the
// native 16/32-bit parcel format (paper simulation parameter 1), as
// "loopN_bytes" metrics next to the fixed-format Table I sizes.
func BenchmarkExtensionFormat(b *testing.B) {
	exp, _ := sweep.Lookup("format")
	var res *sweep.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			b.ReportMetric(float64(p.Cycles), fmt.Sprintf("loop%d_%s", p.CacheBytes, sanitize(s.Label)))
		}
	}
}

func sanitize(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkSingleRun measures the simulator's own speed on one
// representative configuration (PIPE 16-16, 128-byte cache, T=6, 8-byte
// bus), reporting the simulated cycle count.
func BenchmarkSingleRun(b *testing.B) {
	uncached(b)
	v := sweep.TableII[1]
	mcfg := mem.Config{AccessTime: 6, BusWidthBytes: 8, InstrPriority: true, FPULatency: 4}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := sweep.RunPipe(context.Background(), v, 128, mcfg, true)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkSkipAhead is the skip-vs-step A/B ladder behind DESIGN §16's
// speedup table: the benchmark machine (16-16, T=6, 8-byte bus) at the
// paper's cache sizes around the knee, with the event-driven skip-ahead on
// (the default) and off. The ratio between the step and skip variants at
// each size is the fold win; the absolute skip numbers track
// BenchmarkSingleRun.
func BenchmarkSkipAhead(b *testing.B) {
	uncached(b)
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 128, 256} {
		for _, mode := range []struct {
			name   string
			noSkip bool
		}{{"skip", false}, {"step", true}} {
			b.Run(fmt.Sprintf("%dB/%s", size, mode.name), func(b *testing.B) {
				cfg := pipesim.DefaultConfig()
				cfg.CacheBytes = size
				cfg.MemAccessTime = 6
				cfg.BusWidthBytes = 8
				cfg.FPULatency = 4
				cfg.NoSkipAhead = mode.noSkip
				var cycles uint64
				for i := 0; i < b.N; i++ {
					res, err := pipesim.Run(cfg, prog)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(cycles), "sim_cycles")
			})
		}
	}
}

// nullProbe receives the full event stream and discards it — the cheapest
// possible attached probe, isolating the event-emission cost itself.
type nullProbe struct{ n uint64 }

func (p *nullProbe) Event(e pipesim.ProbeEvent) { p.n++ }

// BenchmarkProbeOverhead compares a full Livermore-benchmark run with no
// probe attached (only nil checks at the event sites) against the same run
// feeding a do-nothing probe and a timeline collector. The no-probe case is
// the observability layer's headline cost and must stay within noise of the
// pre-instrumentation simulator.
func BenchmarkProbeOverhead(b *testing.B) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	run := func(b *testing.B, observe func(s *pipesim.Simulation)) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			sim, err := pipesim.NewSimulation(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			if observe != nil {
				observe(sim)
			}
			res, err := sim.Run()
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim_cycles")
	}
	b.Run("no-probe", func(b *testing.B) { run(b, nil) })
	b.Run("null-probe", func(b *testing.B) {
		run(b, func(s *pipesim.Simulation) { s.Observe(&nullProbe{}) })
	})
	b.Run("perloop", func(b *testing.B) {
		run(b, func(s *pipesim.Simulation) {
			if err := s.CollectPerLoop(); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("timeline", func(b *testing.B) {
		run(b, func(s *pipesim.Simulation) { s.Observe(pipesim.NewTimeline()) })
	})
}

// BenchmarkFlightRecorderOverhead prices the always-on post-mortem ring:
// the same Livermore run with recording disabled, at the default 256-event
// depth, and at a deep 4096-event depth. The recorder skips the per-cycle
// event kinds and writes a preallocated ring through an inlined call, so
// "default" must stay within the <5% BenchmarkSingleRun acceptance bound —
// that is what justifies leaving it on for every run.
func BenchmarkFlightRecorderOverhead(b *testing.B) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, depth int) {
		cfg := pipesim.DefaultConfig()
		cfg.FlightRecorderDepth = depth
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res, err := pipesim.Run(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim_cycles")
	}
	b.Run("off", func(b *testing.B) { run(b, -1) })
	b.Run("default", func(b *testing.B) { run(b, 0) })
	b.Run("deep-4096", func(b *testing.B) { run(b, 4096) })
}

// BenchmarkMissClassOverhead prices the cache-introspection layer. "off"
// is the default configuration — one nil check at each engine accounting
// site — and rides BenchmarkSingleRun's CI gate, which holds it within 2%
// of the pre-introspection baseline. "on" feeds every reference through
// the two shadow models (infinite seen-set plus equal-size FA-LRU); that
// cost is only paid when Config.CacheStats is requested. "on-64B" is the
// worst case for the shadows: the thrashing small cache misses constantly,
// so the classification switch and hot-PC map run at peak rate.
func BenchmarkMissClassOverhead(b *testing.B) {
	uncached(b)
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cacheBytes int, on bool) {
		cfg := pipesim.DefaultConfig()
		cfg.CacheBytes = cacheBytes
		cfg.CacheStats = on
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res, err := pipesim.Run(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim_cycles")
	}
	b.Run("off", func(b *testing.B) { run(b, 128, false) })
	b.Run("on", func(b *testing.B) { run(b, 128, true) })
	b.Run("on-64B", func(b *testing.B) { run(b, 64, true) })
}

// BenchmarkRunHookOverhead guards the per-run metrics hook the same way
// BenchmarkProbeOverhead guards the probe layer: a full benchmark run with
// no hook installed (one atomic load per Run) against the same run firing
// a counting hook. The unset case is the library's default and must stay
// within noise of a build without the hook plumbing.
func BenchmarkRunHookOverhead(b *testing.B) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	run := func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res, err := pipesim.Run(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim_cycles")
	}
	b.Run("no-hook", func(b *testing.B) {
		pipesim.SetRunHook(nil)
		run(b)
	})
	b.Run("counting-hook", func(b *testing.B) {
		var runs uint64
		pipesim.SetRunHook(func(ri pipesim.RunInfo) { runs++ })
		defer pipesim.SetRunHook(nil)
		run(b)
	})
}

// BenchmarkSweepE2E runs a small multi-experiment sweep end-to-end through
// the fault-isolated parallel runner and the JSON emitter — the exact path
// cmd/pipesimd's /v1/sweep serves — so baselines track the serving path,
// not just raw simulation speed.
func BenchmarkSweepE2E(b *testing.B) {
	uncached(b)
	exps := make([]sweep.Experiment, 0, 3)
	for _, id := range []string{"table1", "knee", "slots"} {
		e, ok := sweep.Lookup(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	for i := 0; i < b.N; i++ {
		sum := sweep.RunAll(exps, sweep.Options{})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
		if err := sum.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepE2EWarm is BenchmarkSweepE2E with the run cache on and
// already populated: the steady state of a long-lived pipesimd serving
// repeated sweep requests. Only the runner, renderer and cache lookups are
// left to measure.
func BenchmarkSweepE2EWarm(b *testing.B) {
	exps := make([]sweep.Experiment, 0, 3)
	for _, id := range []string{"table1", "knee", "slots"} {
		e, ok := sweep.Lookup(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	if err := sweep.RunAll(exps, sweep.Options{}).Err(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := sweep.RunAll(exps, sweep.Options{})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
		if err := sum.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCacheHit measures a memoized run: the key hash, the LRU
// lookup and the copy-out — everything but the simulation. The gap to
// BenchmarkSingleRun (tens of milliseconds) is what the cache saves on
// every repeated configuration.
func BenchmarkRunCacheHit(b *testing.B) {
	img, err := sweep.BenchmarkImage()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cache := runcache.New(16)
	if _, err := cache.Run(cfg, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Run(cfg, img); err != nil {
			b.Fatal(err)
		}
	}
	if s := cache.Stats(); s.Hits < uint64(b.N) {
		b.Fatalf("expected every iteration to hit, got %+v", s)
	}
}

// BenchmarkSpanOverhead prices the tracing layer at its two states. The
// "untraced" case is every library call path when no daemon is attached:
// StartSpan finds no span in the context and returns the nil no-op span —
// one context value lookup, no allocation. The "traced" case is a pipesimd
// request: a real child span started, annotated and ended. Neither runs
// per simulated cycle; spans bracket whole stages, so even the traced cost
// is amortized over millions of cycles.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, span := tracing.StartSpan(ctx, "stage")
			span.End()
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := tracing.New(4)
		ctx, root := tr.StartTrace(context.Background(), "bench", "bench", tracing.TraceContext{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, span := tracing.StartSpan(ctx, "stage")
			span.SetAttr("outcome", "hit")
			span.End()
		}
		b.StopTimer()
		root.End()
	})
}
