package pipesim_test

import (
	"context"
	"reflect"
	"testing"

	"pipesim"
	"pipesim/internal/runcache"
	"pipesim/internal/runstore"
)

// storeProgram is a distinctive fixture so these tests never collide with
// other tests' keys in the process-wide run cache.
func storeProgram(t *testing.T) *pipesim.Program {
	t.Helper()
	prog, err := pipesim.Assemble(`
        li   r1, 11
        li   r2, 0
        setb b0, loop
loop:   add  r2, r2, r1
        addi r1, r1, -1
        pbr  ne, r1, b0, 2
        nop
        nop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func withStore(t *testing.T, dir string) *runstore.Store {
	t.Helper()
	store, err := runstore.Open(dir, runstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runcache.Default.SetStore(store)
	t.Cleanup(func() {
		runcache.Default.SetStore(nil)
		runcache.Default.Reset()
	})
	return store
}

// TestRunArchivedSurvivesRestart is the PR's acceptance path: a config run
// once is served from the store after a "restart" (cold memory cache, the
// store reopened from the same directory) without re-simulating, and the
// served Result is identical to the fresh one.
func TestRunArchivedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	withStore(t, dir)
	prog := storeProgram(t)
	cfg := pipesim.DefaultConfig()
	cfg.CacheStats = true
	ctx := context.Background()

	res1, src, err := pipesim.RunArchived(ctx, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if src != pipesim.RunSimulated {
		t.Fatalf("first run source = %q, want simulated", src)
	}
	if len(res1.Key) != 64 {
		t.Fatalf("result key = %q, want 64 hex chars", res1.Key)
	}

	// "Restart": wipe the memory tier and reopen the store from disk.
	runcache.Default.Reset()
	withStore(t, dir)

	res2, src, err := pipesim.RunArchived(ctx, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if src != pipesim.RunFromStore {
		t.Fatalf("post-restart source = %q, want store", src)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("store-served result differs from the simulated one:\n%+v\n%+v", res1, res2)
	}

	// The store hit was promoted to the memory tier.
	_, src, err = pipesim.RunArchived(ctx, cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if src != pipesim.RunFromMemory {
		t.Errorf("third run source = %q, want memory", src)
	}
}

// TestSimulationArchivePerLoop: an observed run (which cannot go through
// the cache) archives explicitly, per-loop table included, under the same
// key RunArchived would use.
func TestSimulationArchivePerLoop(t *testing.T) {
	store := withStore(t, t.TempDir())
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}

	// Archiving before Run is an error.
	if err := sim.Archive(store); err == nil {
		t.Error("Archive before Run accepted")
	}

	if err := sim.CollectPerLoop(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Archive(store); err != nil {
		t.Fatal(err)
	}

	key, err := runcache.ParseKey(sim.Key())
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := store.Get(key)
	if !ok {
		t.Fatal("archived record not found")
	}
	if rec.Sim.Cycles != res.Cycles {
		t.Errorf("archived cycles = %d, want %d", rec.Sim.Cycles, res.Cycles)
	}
	if len(rec.PerLoop) == 0 {
		t.Error("archived record carries no per-loop table")
	}
	if sim.Key() != res.Key {
		t.Errorf("Simulation.Key %q != Result.Key %q", sim.Key(), res.Key)
	}
}
