package pipesim_test

import (
	"errors"
	"strings"
	"testing"

	"pipesim"
)

// TestPublicWatchdogDeadlock drives the whole public path: a program that
// reads R7 with no load outstanding deadlocks the machine, and Run reports
// a typed diagnosis instead of hanging until MaxCycles or panicking.
func TestPublicWatchdogDeadlock(t *testing.T) {
	prog, err := pipesim.Assemble(`
        li   r1, 1
        add  r2, r7, r1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.WatchdogCycles = 2_000
	_, err = pipesim.Run(cfg, prog)
	var dl *pipesim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run err = %v, want *pipesim.DeadlockError", err)
	}
	if dl.Cycle > 100_000 {
		t.Errorf("watchdog fired only at cycle %d", dl.Cycle)
	}
	if !strings.Contains(dl.Detail(), "no forward progress") {
		t.Errorf("Detail() = %q", dl.Detail())
	}
}

// TestMachineCheckTypeIsExported pins the re-exported machine-check type:
// sweep drivers must be able to errors.As against it from outside the
// internal packages.
func TestMachineCheckTypeIsExported(t *testing.T) {
	var mce *pipesim.MachineCheckError
	if errors.As(errors.New("plain"), &mce) {
		t.Fatal("errors.As matched a plain error")
	}
	mce = &pipesim.MachineCheckError{Cycle: 7, Strategy: "pipe", PanicValue: "boom"}
	for _, want := range []string{"machine check", "cycle 7", "boom"} {
		if !strings.Contains(mce.Error(), want) {
			t.Errorf("Error() missing %q: %s", want, mce.Error())
		}
	}
}
