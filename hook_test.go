package pipesim_test

import (
	"errors"
	"testing"

	"pipesim"
)

// smallLoop is a short program for hook tests: a counted loop that
// terminates in a few hundred cycles.
const smallLoop = `
        li    r1, 10
        li    r2, 0
        setb  b0, loop
loop:   addi  r2, r2, 1
        addi  r1, r1, -1
        pbr   ne, r1, b0, 2
        nop
        nop
        halt
`

// TestRunHookObservesSuccess pins the hook contract on the success path:
// it fires exactly once per Run, with the config that ran, the result it
// produced and a non-zero elapsed time.
func TestRunHookObservesSuccess(t *testing.T) {
	defer pipesim.SetRunHook(nil)
	prog, err := pipesim.Assemble(smallLoop)
	if err != nil {
		t.Fatal(err)
	}
	var got []pipesim.RunInfo
	pipesim.SetRunHook(func(ri pipesim.RunInfo) { got = append(got, ri) })

	cfg := pipesim.DefaultConfig()
	cfg.CacheBytes = 64
	res, err := pipesim.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	ri := got[0]
	if ri.Result != res {
		t.Errorf("hook Result = %p, want the returned result %p", ri.Result, res)
	}
	if ri.Err != nil {
		t.Errorf("hook Err = %v, want nil", ri.Err)
	}
	if ri.Config.CacheBytes != 64 {
		t.Errorf("hook Config.CacheBytes = %d, want 64", ri.Config.CacheBytes)
	}
	if ri.Elapsed <= 0 {
		t.Errorf("hook Elapsed = %v, want > 0", ri.Elapsed)
	}
}

// TestRunHookObservesFailure: a deadlocking run reaches the hook with the
// error and no result, and clearing the hook stops delivery.
func TestRunHookObservesFailure(t *testing.T) {
	defer pipesim.SetRunHook(nil)
	prog, err := pipesim.Assemble(`
        li   r1, 1
        add  r2, r7, r1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipesim.DefaultConfig()
	cfg.WatchdogCycles = 2_000

	var got []pipesim.RunInfo
	pipesim.SetRunHook(func(ri pipesim.RunInfo) { got = append(got, ri) })
	if _, err := pipesim.Run(cfg, prog); err == nil {
		t.Fatal("deadlocking run returned nil error")
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].Result != nil {
		t.Error("hook Result set on a failed run")
	}
	var dl *pipesim.DeadlockError
	if !errors.As(got[0].Err, &dl) {
		t.Errorf("hook Err = %v, want *DeadlockError", got[0].Err)
	}

	// An invalid configuration fails before any machine is built; the
	// hook observes only runs, so it must not fire.
	pipesim.SetRunHook(func(ri pipesim.RunInfo) { got = append(got, ri) })
	bad := pipesim.DefaultConfig()
	bad.CacheBytes = 3
	if _, err := pipesim.Run(bad, prog); !errors.Is(err, pipesim.ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	if len(got) != 1 {
		t.Errorf("hook fired on a validation failure")
	}

	// Removing the hook stops delivery.
	pipesim.SetRunHook(nil)
	okCfg := pipesim.DefaultConfig()
	if _, err := pipesim.Run(okCfg, mustAssemble(t, smallLoop)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("hook fired after SetRunHook(nil)")
	}
}

func mustAssemble(t *testing.T, src string) *pipesim.Program {
	t.Helper()
	p, err := pipesim.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
