// Tests for the cache-introspection surface: the 3C classification
// invariants (classes sum exactly to the miss count), the golden
// attribution identity with introspection enabled, per-loop miss-class
// folding, and the bit-identical-cycles guarantee that makes the
// introspector safe to leave compiled into the hot path.
package pipesim_test

import (
	"testing"

	"pipesim"
)

// smallCacheConfig is the paper's interesting regime for miss
// classification: a 64-byte cache under 6-cycle memory, where the
// direct-mapped array thrashes and compulsory misses are noise.
func smallCacheConfig(strategy pipesim.Strategy) pipesim.Config {
	cfg := pipesim.DefaultConfig()
	cfg.Strategy = strategy
	cfg.CacheBytes = 64
	cfg.MemAccessTime = 6
	cfg.BusWidthBytes = 8
	cfg.CacheStats = true
	return cfg
}

func runBenchmark(t *testing.T, cfg pipesim.Config) *pipesim.Result {
	t.Helper()
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCacheStatsGolden runs the 64-byte benchmark with introspection on
// and checks every cross-layer identity at once: attribution buckets sum
// to cycles, miss classes sum to the engine's miss count, the per-set
// heatmap sums to the same totals, and the hot-PC table is resolved to
// Livermore loop labels.
func TestCacheStatsGolden(t *testing.T) {
	for _, strategy := range []pipesim.Strategy{pipesim.StrategyPIPE, pipesim.StrategyConventional} {
		t.Run(string(strategy), func(t *testing.T) {
			res := runBenchmark(t, smallCacheConfig(strategy))
			cs := res.CacheStats
			if cs == nil {
				t.Fatal("Config.CacheStats set but Result.CacheStats is nil")
			}

			// The golden identity: introspection must not perturb the
			// attribution invariant.
			if got := res.Attribution.Total(); got != res.Cycles {
				t.Errorf("attribution buckets sum to %d, want Cycles = %d", got, res.Cycles)
			}
			// Classes sum exactly to the engine's miss statistic, by
			// construction (the shadows ride the engine's accounting sites).
			if got := cs.Misses(); got != res.CacheMisses {
				t.Errorf("class sum = %d (compulsory %d + capacity %d + conflict %d), want CacheMisses = %d",
					got, cs.Compulsory, cs.Capacity, cs.Conflict, res.CacheMisses)
			}
			// At 64 bytes the benchmark's working set dwarfs the cache:
			// compulsory misses must be a rounding error next to
			// capacity+conflict (the acceptance shape for the paper's knee).
			if cs.Compulsory >= cs.Capacity+cs.Conflict {
				t.Errorf("compulsory %d >= capacity %d + conflict %d: 64 B cache should thrash",
					cs.Compulsory, cs.Capacity, cs.Conflict)
			}

			// Per-set heatmap sums to the same totals.
			var setMisses, setEvictions, setDead uint64
			for _, s := range cs.Sets {
				setMisses += s.Misses
				setEvictions += s.Evictions
				setDead += s.DeadEvictions
				if s.Misses > s.Accesses {
					t.Errorf("set has more misses (%d) than accesses (%d)", s.Misses, s.Accesses)
				}
			}
			if setMisses != res.CacheMisses {
				t.Errorf("per-set misses sum to %d, want %d", setMisses, res.CacheMisses)
			}
			if setEvictions != cs.Evictions || setDead != cs.DeadEvictions {
				t.Errorf("per-set evictions %d/%d, want %d/%d", setEvictions, setDead, cs.Evictions, cs.DeadEvictions)
			}
			if cs.DeadEvictions > cs.Evictions {
				t.Errorf("dead evictions %d exceed evictions %d", cs.DeadEvictions, cs.Evictions)
			}
			if want := 64 / 16; len(cs.Sets) != want {
				t.Errorf("heatmap has %d sets, want %d", len(cs.Sets), want)
			}

			// Hot PCs: present, sorted, within the default top-N, and
			// resolved to Livermore loop labels.
			if len(cs.HotPCs) == 0 {
				t.Fatal("no hot PCs on a thrashing cache")
			}
			if len(cs.HotPCs) > 10 {
				t.Errorf("hot-PC table has %d entries, want the default top 10", len(cs.HotPCs))
			}
			labelled := 0
			for i, h := range cs.HotPCs {
				if i > 0 && h.Misses > cs.HotPCs[i-1].Misses {
					t.Errorf("hot PCs not sorted: %+v above %+v", cs.HotPCs[i-1], h)
				}
				if h.Loop != 0 {
					labelled++
					if h.Label == "" {
						t.Errorf("hot PC %#x in loop %d has no label", h.PC, h.Loop)
					}
				}
			}
			if labelled == 0 {
				t.Error("no hot PC resolved to a Livermore loop")
			}
		})
	}
}

// TestCacheStatsPerLoop checks the per-loop miss-class fold: every loop's
// class split sums to its miss count, and the loop totals sum to the
// run's classes.
func TestCacheStatsPerLoop(t *testing.T) {
	prog, _, err := pipesim.LivermoreProgram()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := pipesim.NewSimulation(smallCacheConfig(pipesim.StrategyPIPE), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CollectPerLoop(); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	var comp, capa, conf uint64
	for _, l := range res.PerLoop {
		if got := l.MissCompulsory + l.MissCapacity + l.MissConflict; got != l.CacheMisses {
			t.Errorf("loop %d: classes sum to %d, want CacheMisses = %d", l.Loop, got, l.CacheMisses)
		}
		comp += l.MissCompulsory
		capa += l.MissCapacity
		conf += l.MissConflict
	}
	cs := res.CacheStats
	if comp != cs.Compulsory || capa != cs.Capacity || conf != cs.Conflict {
		t.Errorf("per-loop class totals %d/%d/%d, want %d/%d/%d",
			comp, capa, conf, cs.Compulsory, cs.Capacity, cs.Conflict)
	}
}

// TestCacheStatsDeterminism: the introspector is purely observational, so
// every architectural number must be bit-identical with it on or off.
func TestCacheStatsDeterminism(t *testing.T) {
	for _, strategy := range []pipesim.Strategy{pipesim.StrategyPIPE, pipesim.StrategyConventional} {
		t.Run(string(strategy), func(t *testing.T) {
			on := smallCacheConfig(strategy)
			off := on
			off.CacheStats = false

			resOn := runBenchmark(t, on)
			resOff := runBenchmark(t, off)
			if resOff.CacheStats != nil {
				t.Error("Result.CacheStats set without Config.CacheStats")
			}
			if resOn.Cycles != resOff.Cycles {
				t.Errorf("cycles differ: %d with introspection, %d without", resOn.Cycles, resOff.Cycles)
			}
			if resOn.Instructions != resOff.Instructions {
				t.Errorf("instructions differ: %d vs %d", resOn.Instructions, resOff.Instructions)
			}
			if resOn.Attribution != resOff.Attribution {
				t.Errorf("attribution differs:\n on: %+v\noff: %+v", resOn.Attribution, resOff.Attribution)
			}
			if resOn.CacheMisses != resOff.CacheMisses || resOn.CacheHits != resOff.CacheHits {
				t.Errorf("cache counters differ: %d/%d vs %d/%d",
					resOn.CacheHits, resOn.CacheMisses, resOff.CacheHits, resOff.CacheMisses)
			}
		})
	}
}

// TestCacheStatsTIB: the TIB front end has no cache array to introspect;
// enabling CacheStats is accepted and yields no report rather than a
// misleading one.
func TestCacheStatsTIB(t *testing.T) {
	cfg := pipesim.DefaultConfig()
	cfg.Strategy = pipesim.StrategyTIB
	cfg.CacheStats = true
	res := runBenchmark(t, cfg)
	if res.CacheStats != nil {
		t.Errorf("TIB run produced CacheStats: %+v", res.CacheStats)
	}
}
